"""Unit tests for big key/data pair chains."""

import pytest

from repro.core import addressing
from repro.core.bigpairs import BigPageView, BigPairStore
from repro.core.bitmaps import OvflAllocator
from repro.core.buffer import BufferPool
from repro.core.constants import PAGE_F_BIG, PAGE_HDR_SIZE
from repro.core.header import Header
from repro.storage.memfile import MemPagedFile


def make_store(bsize=64, cachesize=1 << 16):
    header = Header(bsize=bsize, bshift=bsize.bit_length() - 1, ffactor=8)
    f = MemPagedFile(bsize)

    def addr(key):
        kind, n = key
        if kind == "B":
            return addressing.bucket_to_page(n, header.hdr_pages, header.spares)
        return addressing.oaddr_to_page(n, header.hdr_pages, header.spares)

    pool = BufferPool(f, bsize, cachesize, addr)
    alloc = OvflAllocator(header, pool)
    return header, pool, alloc, BigPairStore(pool, alloc)


class TestBigPageView:
    def test_initialize(self):
        view = BigPageView(bytearray(64))
        view.initialize()
        assert view.used == 0
        assert view.next_oaddr == 0
        assert view.flags == PAGE_F_BIG
        assert view.capacity == 64 - PAGE_HDR_SIZE

    def test_payload_roundtrip(self):
        view = BigPageView(bytearray(64))
        view.initialize()
        view.set_payload(b"hello world")
        assert view.payload() == b"hello world"

    def test_oversized_payload_rejected(self):
        view = BigPageView(bytearray(64))
        view.initialize()
        with pytest.raises(ValueError):
            view.set_payload(b"x" * 57)


class TestStoreFetch:
    def test_single_page_pair(self):
        _h, _p, _a, store = make_store()
        head = store.store(b"key", b"data")
        assert store.fetch(head, 3, 4) == (b"key", b"data")

    def test_multi_page_pair(self):
        _h, _p, _a, store = make_store(bsize=64)
        key = bytes(range(256))  # 256 bytes > several 56-byte pages
        data = bytes(reversed(range(256))) * 4
        head = store.store(key, data)
        k, d = store.fetch(head, len(key), len(data))
        assert k == key
        assert d == data

    def test_fetch_key_reads_only_prefix_pages(self):
        _h, pool, _a, store = make_store(bsize=64)
        key = b"K" * 40
        data = b"D" * 5000  # long chain
        head = store.store(key, data)
        pool.drop_all()
        reads_before = pool.misses
        assert store.fetch_key(head, len(key)) == key
        # the key fits on the first chain page: exactly one fault
        assert pool.misses == reads_before + 1

    def test_empty_data(self):
        _h, _p, _a, store = make_store()
        head = store.store(b"justkey", b"")
        assert store.fetch(head, 7, 0) == (b"justkey", b"")

    def test_key_data_split_across_page_boundary(self):
        _h, _p, _a, store = make_store(bsize=64)
        cap = 64 - PAGE_HDR_SIZE
        key = b"k" * (cap - 3)  # data starts 3 bytes before the boundary
        data = b"d" * 20
        head = store.store(key, data)
        assert store.fetch(head, len(key), len(data)) == (key, data)

    def test_two_pairs_do_not_interfere(self):
        _h, _p, _a, store = make_store(bsize=64)
        h1 = store.store(b"a" * 100, b"1" * 100)
        h2 = store.store(b"b" * 100, b"2" * 100)
        assert store.fetch(h1, 100, 100) == (b"a" * 100, b"1" * 100)
        assert store.fetch(h2, 100, 100) == (b"b" * 100, b"2" * 100)


class TestFree:
    def test_free_releases_all_chain_pages(self):
        _h, _p, alloc, store = make_store(bsize=64)
        in_use_before = alloc.in_use_count()
        head = store.store(b"k" * 300, b"v" * 300)
        used_by_chain = alloc.in_use_count() - in_use_before
        assert used_by_chain >= 10  # 600 bytes / 56 per page
        store.free(head)
        # everything except possibly new bitmap pages is back
        assert alloc.in_use_count() <= in_use_before + 2

    def test_freed_pages_reused_by_next_store(self):
        header, _p, alloc, store = make_store(bsize=64)
        h1 = store.store(b"k" * 200, b"v" * 200)
        spares_after_first = header.spares[header.ovfl_point]
        store.free(h1)
        store.store(b"x" * 200, b"y" * 200)
        assert header.spares[header.ovfl_point] == spares_after_first


class TestEvictionSafety:
    def test_chain_correct_under_tiny_pool(self):
        """Chains must survive constant eviction during their own
        construction (the pinning discipline)."""
        _h, _p, _a, store = make_store(bsize=64, cachesize=0)
        key = b"K" * 500
        data = b"D" * 3000
        head = store.store(key, data)
        assert store.fetch(head, len(key), len(data)) == (key, data)
