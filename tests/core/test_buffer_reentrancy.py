"""Regression tests: pool walks must survive reentrant trace hooks.

``flush()`` and eviction fire I/O and ``on_evict`` callbacks mid-walk;
a subscriber may call back into the pool (``invalidate``, ``get``) while
the walk's collected header list is going stale.  These used to corrupt
the walk (writing dropped headers, KeyErrors from the LRU dict); the fix
re-validates each header against the live pool immediately before its
bytes go out.
"""

from __future__ import annotations

from repro.core.buffer import BufferPool
from repro.obs.hooks import TraceHooks
from repro.storage.memfile import MemPagedFile


class _HookedFile:
    """Delegating pager that announces each write before performing it."""

    def __init__(self, inner):
        self.inner = inner
        self.on_write = None
        self.writes: list[int] = []

    def write_page(self, pageno, data):
        self.writes.append(pageno)
        if self.on_write is not None:
            self.on_write(pageno)
        self.inner.write_page(pageno, data)

    def write_pages(self, start_pageno, data):
        npages = len(data) // self.inner.pagesize
        self.writes.extend(range(start_pageno, start_pageno + npages))
        if self.on_write is not None:
            self.on_write(start_pageno)
        self.inner.write_pages(start_pageno, data)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _make_pool(nbuffers=8, bsize=64, hooks=None):
    inner = MemPagedFile(bsize)
    f = _HookedFile(inner)

    def addr(key):
        kind, n = key
        return n if kind == "B" else 1000 + n

    return f, BufferPool(f, bsize, nbuffers * bsize, addr, hooks=hooks)


def _dirty(pool, keys):
    headers = {}
    for k in keys:
        h = pool.get(k, create=True)
        pool.mark_dirty(h)
        headers[k] = h
    return headers


class TestFlushReentrancy:
    def test_invalidate_during_flush_skips_dropped_headers(self):
        """A write hook that invalidates a later dirty buffer mid-flush:
        the dropped buffer must not be written afterwards."""
        f, pool = _make_pool()
        keys = [("B", i) for i in range(4)]
        _dirty(pool, keys)
        victim = ("B", 3)

        def drop_victim(_pageno):
            f.on_write = None  # reenter once
            pool.invalidate(victim)

        f.on_write = drop_victim
        pool.flush(batched=False)
        assert victim not in pool
        assert 3 not in f.writes  # dropped before its turn, never written
        assert pool.dirty_count() == 0

    def test_invalidate_during_batched_flush(self):
        """Same reentry under the run-coalescing path: a later run whose
        headers went stale during the first run's write is skipped."""
        f, pool = _make_pool()
        # two non-contiguous runs: [0, 1] and [4, 5]
        _dirty(pool, [("B", 0), ("B", 1), ("B", 4), ("B", 5)])
        victims = [("B", 4), ("B", 5)]

        def drop_tail(_pageno):
            f.on_write = None
            for v in victims:
                pool.invalidate(v)

        f.on_write = drop_tail
        pool.flush(batched=True)
        for v in victims:
            assert v not in pool
        assert 4 not in f.writes and 5 not in f.writes
        assert pool.dirty_count() == 0

    def test_reentrant_get_during_flush_is_safe(self):
        """A hook that faults a new page mid-flush (growing the pool dict)
        must not break the walk."""
        f, pool = _make_pool()
        _dirty(pool, [("B", i) for i in range(4)])

        def fault_new(_pageno):
            f.on_write = None
            pool.get(("B", 99), create=True)

        f.on_write = fault_new
        pool.flush()
        assert ("B", 99) in pool


class TestEvictionReentrancy:
    def test_on_evict_hook_invalidating_chain_member(self):
        """An on_evict subscriber that invalidates the next chain member:
        the eviction walk must skip the now-dead header instead of
        writing it back or double-dropping it."""
        hooks = TraceHooks()
        f, pool = _make_pool(nbuffers=4, hooks=hooks)
        primary = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.mark_dirty(primary)
        pool.mark_dirty(ovfl)
        pool.link_chain(primary, ovfl)

        fired = []

        def kill_successor(payload):
            if payload["key"] == ("B", 0) and not fired:
                fired.append(True)
                pool.invalidate(("O", 1))

        hooks.subscribe("on_evict", kill_successor)
        # overflow the pool so ('B', 0)'s chain is chosen for eviction
        for i in range(2, 10):
            pool.get(("B", i), create=True)
        assert ("O", 1) not in pool
        assert 1001 not in f.writes  # invalidated member never written

    def test_on_evict_hook_reentering_get(self):
        """An on_evict subscriber that faults pages back in mid-shrink."""
        hooks = TraceHooks()
        f, pool = _make_pool(nbuffers=4, hooks=hooks)

        def refault(payload):
            if payload["key"][1] % 2 == 0:
                pool.get(("B", 50 + payload["key"][1]))

        hooks.subscribe("on_evict", refault)
        for i in range(12):
            h = pool.get(("B", i), create=True)
            pool.mark_dirty(h)
        pool.flush()
        assert pool.dirty_count() == 0


class TestRaisingSubscribers:
    """Companion regression to the reentrancy ones: a subscriber that
    *raises* mid-walk must be isolated (TraceHooks catches it), leaving
    the flush/eviction intact and the exception on ``hooks.errors``."""

    def test_raising_on_evict_does_not_abort_eviction(self):
        import pytest

        hooks = TraceHooks()
        f, pool = _make_pool(nbuffers=4, hooks=hooks)

        def bomb(payload):
            raise RuntimeError("subscriber bug")

        hooks.subscribe("on_evict", bomb)
        with pytest.warns(RuntimeWarning):
            for i in range(12):
                h = pool.get(("B", i), create=True)
                pool.mark_dirty(h)
        assert hooks.errors and hooks.errors[0][0] == "on_evict"
        pool.flush()
        assert pool.dirty_count() == 0

    def test_raising_on_buffer_does_not_abort_table_ops(self):
        import pytest

        from repro.core.table import HashTable

        t = HashTable.create(None, in_memory=True)
        t.hooks.subscribe("on_buffer", lambda p: 1 / 0)
        try:
            with pytest.warns(RuntimeWarning):
                t.put(b"k", b"v")
            assert t.get(b"k") == b"v"
            assert any(e == "on_buffer" for e, _ in t.hooks.errors)
        finally:
            t.close()
