"""Unit tests for the split-policy option (the hybrid is the paper's
design; the pure policies exist for the ablation)."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.table import HashTable


def fill(t, n, value=b"v" * 24):
    for i in range(n):
        t.put(f"key-{i:04d}".encode(), value)


class TestPolicies:
    def test_bad_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, in_memory=True, split_policy="sometimes")

    def test_controlled_never_splits_on_overflow(self):
        """With a huge fill factor, controlled-only splitting leaves one
        bucket with a long overflow chain."""
        t = HashTable.create(
            None, bsize=64, ffactor=10_000, in_memory=True,
            split_policy="controlled",
        )
        fill(t, 200)
        assert t.nbuckets == 1
        assert t.stats.uncontrolled_splits == 0
        assert t.stats.ovfl_pages_linked > 50
        for i in range(200):
            assert t.get(f"key-{i:04d}".encode()) == b"v" * 24
        t.close()

    def test_uncontrolled_ignores_fill_factor(self):
        """With huge pages, uncontrolled-only splitting never grows the
        table no matter how many keys per bucket."""
        t = HashTable.create(
            None, bsize=8192, ffactor=2, in_memory=True,
            split_policy="uncontrolled",
        )
        fill(t, 300)
        # 300 pairs of ~38 bytes need ~2 pages: a couple of overflow-driven
        # splits at most -- crucially far fewer than the fill factor would
        # demand (300/2 = 150 buckets)
        assert t.nbuckets < 10
        assert t.stats.controlled_splits == 0
        t.close()

    def test_hybrid_uses_both_triggers(self):
        # ffactor 2 fires controlled splits before the ~3-pair pages fill;
        # hash skew still overflows some buckets, firing uncontrolled ones.
        t = HashTable.create(
            None, bsize=64, ffactor=2, in_memory=True, split_policy="hybrid"
        )
        fill(t, 400, value=b"v")
        assert t.stats.controlled_splits > 0
        assert t.stats.uncontrolled_splits > 0
        t.check_invariants()
        t.close()

    @pytest.mark.parametrize("policy", ["hybrid", "controlled", "uncontrolled"])
    def test_all_policies_are_correct(self, policy):
        """Policies trade performance, never correctness."""
        t = HashTable.create(
            None, bsize=128, ffactor=8, in_memory=True, split_policy=policy
        )
        data = {f"k{i}".encode(): f"v{i}".encode() * 3 for i in range(300)}
        for k, v in data.items():
            t.put(k, v)
        for i in range(0, 300, 3):
            t.delete(f"k{i}".encode())
            del data[f"k{i}".encode()]
        assert dict(t.items()) == data
        t.check_invariants()
        t.close()
