"""PageView edge cases and the decoded-slot cache.

Covers the hot-path rework (docs/PERFORMANCE.md): pages filled to
exactly zero free space, big-pair references sitting right on the
``is_big_pair`` boundary, slot tables that grow until they touch
``data_off``, and the cache-invalidation rules (view-side mutators and
the owner dirty epoch).
"""

import pytest

from repro.core.constants import PAGE_HDR_SIZE, SLOT_SIZE
from repro.core.pages import (
    PageFullError,
    PageView,
    big_ref_bytes,
    empty_page,
    is_big_pair,
    pair_bytes_needed,
)

BSIZE = 256


@pytest.fixture
def page():
    return PageView(empty_page(BSIZE))


class TestExactlyFull:
    def test_one_pair_fills_page_to_zero_free(self, page):
        """A pair sized to leave free_space == 0 stores and reads back."""
        avail = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE
        key = b"k" * 100
        data = b"d" * (avail - 100)
        assert pair_bytes_needed(len(key), len(data)) == BSIZE - PAGE_HDR_SIZE
        page.add_pair(key, data)
        assert page.free_space == 0
        assert page.get_pair(0) == (key, data)
        assert page.find_inline(key) == 0

    def test_full_page_rejects_everything(self, page):
        avail = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE
        page.add_pair(b"k" * 100, b"d" * (avail - 100))
        assert not page.fits(0, 0)
        with pytest.raises(PageFullError):
            page.add_pair(b"", b"")

    def test_delete_from_full_page_reopens_space(self, page):
        avail = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE
        key = b"k" * 100
        page.add_pair(key, b"d" * (avail - 100))
        page.delete_slot(0)
        assert page.nslots == 0
        assert page.free_space == BSIZE - PAGE_HDR_SIZE
        page.add_pair(b"again", b"works")
        assert page.get_pair(0) == (b"again", b"works")


class TestBigPairBoundary:
    def test_largest_inline_pair_is_not_big(self, page):
        """klen + dlen == bsize - header - slot: inline by one byte."""
        limit = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE
        assert not is_big_pair(100, limit - 100, BSIZE)
        page.add_pair(b"k" * 100, b"d" * (limit - 100))
        assert page.get_pair(0) == (b"k" * 100, b"d" * (limit - 100))

    def test_one_byte_over_is_big(self):
        limit = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE
        assert is_big_pair(100, limit - 100 + 1, BSIZE)

    def test_big_ref_on_boundary_page(self, page):
        """A big-pair reference added when exactly its size remains."""
        klen = 500  # longer than BIG_KEY_PREFIX, so the prefix truncates
        need = big_ref_bytes(klen)
        filler_data = BSIZE - PAGE_HDR_SIZE - SLOT_SIZE - need
        page.add_pair(b"x", b"f" * (filler_data - 1))
        assert page.free_space == need
        assert page.fits_big_ref(klen)
        page.add_big_ref(77, klen, 4000, b"p" * klen)
        assert page.free_space == 0
        assert page.slot_is_big(1)
        oaddr, k, d, prefix = page.get_big_ref(1)
        assert (oaddr, k, d) == (77, 500, 4000)
        assert prefix and set(prefix) == {ord("p")}
        # find_inline must skip the big slot even for a same-length probe
        assert page.find_inline(b"p" * len(prefix)) == -1


class TestSlotTableTouchesDataoff:
    def test_pack_until_slot_table_meets_entries(self, page):
        """31 pairs of 2-byte entries: slot table end == data_off."""
        n = (BSIZE - PAGE_HDR_SIZE) // (SLOT_SIZE + 2)
        for i in range(n):
            page.add_pair(bytes([65 + i // 26, 65 + i % 26]), b"")
        assert page.free_space == 0
        assert PAGE_HDR_SIZE + page.nslots * SLOT_SIZE == page.data_off
        for i in range(n):
            key = bytes([65 + i // 26, 65 + i % 26])
            assert page.find_inline(key) == i
            assert page.get_pair(i) == (key, b"")

    def test_delete_middle_slot_when_touching(self, page):
        n = (BSIZE - PAGE_HDR_SIZE) // (SLOT_SIZE + 2)
        keys = [bytes([65 + i // 26, 65 + i % 26]) for i in range(n)]
        for k in keys:
            page.add_pair(k, b"")
        page.delete_slot(n // 2)
        survivors = keys[: n // 2] + keys[n // 2 + 1 :]
        assert page.nslots == n - 1
        for i, k in enumerate(survivors):
            assert page.get_pair(i) == (k, b"")


class _FakeOwner:
    """Stands in for a BufferHeader: just the dirty epoch."""

    def __init__(self):
        self.epoch = 0


class TestDecodedSlotCache:
    def test_cache_is_reused_between_reads(self, page):
        page.add_pair(b"a", b"1")
        first = page.slots()
        assert page.slots() is first

    def test_view_mutators_invalidate(self, page):
        page.add_pair(b"a", b"1")
        before = page.slots()
        page.add_pair(b"b", b"2")
        after = page.slots()
        assert after is not before
        assert len(after) == 2
        page.delete_slot(0)
        assert len(page.slots()) == 1
        assert page.get_pair(0) == (b"b", b"2")

    def test_owner_epoch_invalidates_out_of_band_writes(self):
        owner = _FakeOwner()
        buf = empty_page(BSIZE)
        view = PageView(buf, owner=owner)
        view.add_pair(b"a", b"1")
        assert len(view.slots()) == 1
        # Out-of-band byte poke (as BufferPool.mark_dirty callers do):
        # rewrite the page wholesale behind the view's back.
        fresh = empty_page(BSIZE)
        fresh_view = PageView(fresh)
        fresh_view.add_pair(b"x", b"9")
        fresh_view.add_pair(b"y", b"8")
        buf[:] = fresh
        owner.epoch += 1
        assert len(view.slots()) == 2
        assert view.get_pair(0) == (b"x", b"9")

    def test_unowned_view_trusts_its_own_mutations_only(self):
        view = PageView(empty_page(BSIZE))
        view.add_pair(b"a", b"1")
        assert view.find_inline(b"a") == 0
        assert view.find_inline(b"zz") == -1


class TestZeroCopyAccessors:
    def test_get_pair_view_aliases_the_page(self, page):
        page.add_pair(b"key", b"value")
        kv, dv = page.get_pair_view(0)
        assert isinstance(kv, memoryview) and isinstance(dv, memoryview)
        assert bytes(kv) == b"key" and bytes(dv) == b"value"
        # aliasing: mutate through the view, see it in get_pair
        dv[0] = ord("V")
        assert page.get_pair(0) == (b"key", b"Value")

    def test_get_data_matches_get_pair(self, page):
        page.add_pair(b"key", b"value")
        assert page.get_data(0) == page.get_pair(0)[1]

    def test_big_slot_rejected_by_pair_accessors(self, page):
        page.add_big_ref(5, 100, 100, b"prefix")
        with pytest.raises(ValueError):
            page.get_pair_view(0)
        with pytest.raises(ValueError):
            page.get_data(0)

    def test_oversized_probe_key_never_matches(self, page):
        page.add_pair(b"k", b"v")
        assert page.find_inline(b"x" * 40000) == -1
