"""Unit tests for buddy-in-waiting address arithmetic."""

import pytest

from repro.core.addressing import (
    bucket_to_page,
    log2_ceil,
    make_oaddr,
    oaddr_to_page,
    oaddr_to_slot,
    slot_to_oaddr,
    split_oaddr,
)
from repro.core.constants import MAX_OVFL_PER_SPLIT, MAX_SPLITS


class TestLog2Ceil:
    def test_exact_powers(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(4) == 2
        assert log2_ceil(1024) == 10

    def test_between_powers_rounds_up(self):
        assert log2_ceil(3) == 2
        assert log2_ceil(5) == 3
        assert log2_ceil(1025) == 11

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            log2_ceil(0)
        with pytest.raises(ValueError):
            log2_ceil(-1)


class TestOaddrPacking:
    def test_roundtrip(self):
        for s in (0, 1, 5, 31):
            for p in (1, 2, 1000, MAX_OVFL_PER_SPLIT):
                oaddr = make_oaddr(s, p)
                assert split_oaddr(oaddr) == (s, p)

    def test_paper_bit_layout(self):
        # top 5 bits split point, low 11 page number
        assert make_oaddr(1, 1) == (1 << 11) | 1
        assert make_oaddr(2, 3) == (2 << 11) | 3

    def test_zero_pagenum_reserved(self):
        with pytest.raises(ValueError):
            make_oaddr(0, 0)
        with pytest.raises(ValueError):
            split_oaddr(1 << 11)  # pagenum bits all zero

    def test_limits_enforced(self):
        with pytest.raises(ValueError):
            make_oaddr(MAX_SPLITS, 1)
        with pytest.raises(ValueError):
            make_oaddr(0, MAX_OVFL_PER_SPLIT + 1)
        with pytest.raises(ValueError):
            split_oaddr(0)


class TestBucketToPage:
    def test_no_overflow_pages_is_identity_plus_header(self):
        spares = [0] * 32
        for b in (0, 1, 2, 7, 100):
            assert bucket_to_page(b, 1, spares) == b + 1

    def test_spares_shift_later_generations(self):
        # 2 overflow pages at split point 0, 3 at split point 1
        spares = [2, 5] + [5] * 30
        assert bucket_to_page(0, 1, spares) == 1
        # bucket 1: generation index log2(2)-1 = 0 -> shifted by spares[0]
        assert bucket_to_page(1, 1, spares) == 1 + 1 + 2
        # buckets 2,3: index 1 -> shifted by spares[1]
        assert bucket_to_page(2, 1, spares) == 2 + 1 + 5
        assert bucket_to_page(3, 1, spares) == 3 + 1 + 5

    def test_negative_bucket_rejected(self):
        with pytest.raises(ValueError):
            bucket_to_page(-1, 1, [0] * 32)


class TestOaddrToPage:
    def test_overflow_follows_its_split_boundary(self):
        spares = [2, 5] + [5] * 30
        # split point 0 sits after bucket 0 (page 1)
        assert oaddr_to_page(make_oaddr(0, 1), 1, spares) == 2
        assert oaddr_to_page(make_oaddr(0, 2), 1, spares) == 3
        # split point 1 sits after bucket 1 (page 4)
        assert oaddr_to_page(make_oaddr(1, 1), 1, spares) == 5

    def test_no_collisions_between_buckets_and_overflow(self):
        """The core layout invariant: with a consistent spares array, every
        bucket page and overflow page maps to a distinct physical page."""
        spares = [3, 7, 12, 12, 20] + [20] * 27
        used = {}
        for b in range(16):
            page = bucket_to_page(b, 1, spares)
            assert page not in used, f"bucket {b} collides with {used[page]}"
            used[page] = ("B", b)
        counts = [3, 4, 5, 0, 8]
        for s, count in enumerate(counts):
            for p in range(1, count + 1):
                oaddr = make_oaddr(s, p)
                page = oaddr_to_page(oaddr, 1, spares)
                assert page not in used, (
                    f"oaddr ({s},{p}) collides with {used[page]}"
                )
                used[page] = ("O", s, p)


class TestSlotNumbering:
    def test_slot_roundtrip(self):
        spares = [3, 7, 12] + [12] * 29
        for s, count in enumerate((3, 4, 5)):
            for p in range(1, count + 1):
                oaddr = make_oaddr(s, p)
                slot = oaddr_to_slot(oaddr, spares)
                assert slot_to_oaddr(slot, spares, ovfl_point=2) == oaddr

    def test_slots_are_contiguous_in_allocation_order(self):
        spares = [2, 5] + [5] * 30
        slots = [
            oaddr_to_slot(make_oaddr(0, 1), spares),
            oaddr_to_slot(make_oaddr(0, 2), spares),
            oaddr_to_slot(make_oaddr(1, 1), spares),
            oaddr_to_slot(make_oaddr(1, 2), spares),
            oaddr_to_slot(make_oaddr(1, 3), spares),
        ]
        assert slots == [0, 1, 2, 3, 4]

    def test_slot_out_of_range(self):
        spares = [1] + [1] * 31
        with pytest.raises(ValueError):
            slot_to_oaddr(5, spares, ovfl_point=0)
        with pytest.raises(ValueError):
            slot_to_oaddr(-1, spares, ovfl_point=0)
