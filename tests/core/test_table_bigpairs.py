"""Big key/data pair handling through the table interface.

"Inserts never fail because key and/or associated data is too large" -- the
paper's headline functional improvement over dbm.
"""

import pytest

from repro.core.table import HashTable


@pytest.fixture
def small_page_table():
    t = HashTable.create(None, bsize=128, ffactor=8, in_memory=True)
    yield t
    t.close()


class TestBigValues:
    def test_value_larger_than_page(self, small_page_table):
        t = small_page_table
        value = b"V" * 1000
        t.put(b"k", value)
        assert t.get(b"k") == value

    def test_value_much_larger_than_page(self, small_page_table):
        t = small_page_table
        value = bytes(i % 251 for i in range(50_000))
        t.put(b"huge", value)
        assert t.get(b"huge") == value

    def test_big_key_small_value(self, small_page_table):
        t = small_page_table
        key = b"K" * 500
        t.put(key, b"v")
        assert t.get(key) == b"v"
        assert key in t

    def test_big_key_and_value(self, small_page_table):
        t = small_page_table
        key = b"K" * 400
        value = b"V" * 4000
        t.put(key, value)
        assert t.get(key) == value

    def test_big_pair_replace(self, small_page_table):
        t = small_page_table
        key = b"K" * 200
        t.put(key, b"first" * 100)
        t.put(key, b"second" * 200)
        assert t.get(key) == b"second" * 200
        assert len(t) == 1

    def test_big_pair_replaced_by_small(self, small_page_table):
        t = small_page_table
        t.put(b"k", b"X" * 2000)
        t.put(b"k", b"small")
        assert t.get(b"k") == b"small"

    def test_big_pair_delete_frees_chain(self, small_page_table):
        t = small_page_table
        before = t.allocator.in_use_count()
        t.put(b"k", b"X" * 5000)
        assert t.allocator.in_use_count() > before
        t.delete(b"k")
        # all chain pages freed (bitmap pages may remain)
        assert t.allocator.in_use_count() <= before + 2
        assert t.get(b"k") is None


class TestBigKeyDiscrimination:
    def test_same_prefix_different_big_keys(self, small_page_table):
        """Keys sharing the inline prefix must still be distinguished (the
        full key lives on the chain)."""
        t = small_page_table
        k1 = b"P" * 300 + b"1"
        k2 = b"P" * 300 + b"2"
        t.put(k1, b"one")
        t.put(k2, b"two")
        assert t.get(k1) == b"one"
        assert t.get(k2) == b"two"
        assert t.get(b"P" * 300 + b"3") is None

    def test_same_length_prefix_no_false_match(self, small_page_table):
        t = small_page_table
        k1 = b"prefix-shared-" + b"a" * 200
        k2 = b"prefix-shared-" + b"b" * 200
        t.put(k1, b"1")
        assert t.get(k2) is None

    def test_inline_key_not_confused_with_big(self, small_page_table):
        t = small_page_table
        t.put(b"samekey", b"inline")
        t.put(b"samekey" + b"x" * 400, b"big")
        assert t.get(b"samekey") == b"inline"
        assert t.get(b"samekey" + b"x" * 400) == b"big"


class TestBigPairsAcrossSplits:
    def test_big_pairs_survive_table_growth(self, small_page_table):
        t = small_page_table
        bigs = {f"bigkey-{i}".encode() * 20: (f"val{i}".encode() * 300) for i in range(10)}
        for k, v in bigs.items():
            t.put(k, v)
        # force many splits with small pairs
        for i in range(500):
            t.put(f"small-{i}".encode(), b"v")
        for k, v in bigs.items():
            assert t.get(k) == v
        t.check_invariants()

    def test_iteration_includes_big_pairs(self, small_page_table):
        t = small_page_table
        t.put(b"small", b"1")
        t.put(b"B" * 300, b"2" * 300)
        items = dict(t.items())
        assert items == {b"small": b"1", b"B" * 300: b"2" * 300}

    def test_cursor_returns_big_keys(self, small_page_table):
        t = small_page_table
        t.put(b"B" * 300, b"big")
        t.put(b"s", b"small")
        keys = set()
        k = t.first_key()
        while k is not None:
            keys.add(k)
            k = t.next_key()
        assert keys == {b"B" * 300, b"s"}


class TestBoundarySizes:
    def test_pair_exactly_at_page_capacity(self):
        from repro.core.constants import PAGE_HDR_SIZE, SLOT_SIZE

        t = HashTable.create(None, bsize=256, in_memory=True)
        cap = 256 - PAGE_HDR_SIZE - SLOT_SIZE
        key = b"k" * 10
        # largest inline pair
        t.put(key, b"v" * (cap - 10))
        assert t.get(key) == b"v" * (cap - 10)
        # one byte more: big-pair path
        t.put(b"j" * 10, b"w" * (cap - 9))
        assert t.get(b"j" * 10) == b"w" * (cap - 9)
        assert t.stats.big_pairs_stored == 1
        t.close()
