"""Unit tests for the slotted page layout."""

import pytest

from repro.core.constants import (
    BIG_KEY_PREFIX,
    PAGE_HDR_SIZE,
    SLOT_SIZE,
)
from repro.core.pages import (
    PageFullError,
    PageView,
    big_ref_bytes,
    empty_page,
    is_big_pair,
    pair_bytes_needed,
)


@pytest.fixture
def page():
    return PageView(empty_page(256))


class TestEmptyPage:
    def test_fresh_page_state(self, page):
        assert page.nslots == 0
        assert page.data_off == 256
        assert page.ovfl_addr == 0
        assert page.flags == 0
        assert page.free_space == 256 - PAGE_HDR_SIZE

    def test_zero_filled_page_looks_uninitialized(self):
        view = PageView(bytearray(256))
        assert view.looks_uninitialized()
        view.initialize()
        assert not view.looks_uninitialized()


class TestAddGet:
    def test_single_pair_roundtrip(self, page):
        page.add_pair(b"key", b"value")
        assert page.nslots == 1
        assert page.get_pair(0) == (b"key", b"value")
        assert page.get_key(0) == b"key"

    def test_multiple_pairs_keep_order(self, page):
        for i in range(5):
            page.add_pair(f"k{i}".encode(), f"v{i}".encode())
        for i in range(5):
            assert page.get_pair(i) == (f"k{i}".encode(), f"v{i}".encode())

    def test_empty_key_and_value_allowed(self, page):
        page.add_pair(b"", b"")
        assert page.get_pair(0) == (b"", b"")

    def test_space_accounting(self, page):
        before = page.free_space
        page.add_pair(b"abc", b"defgh")
        assert page.free_space == before - pair_bytes_needed(3, 5)
        assert page.used_bytes() == PAGE_HDR_SIZE + SLOT_SIZE + 8

    def test_page_full_raises(self, page):
        with pytest.raises(PageFullError):
            for i in range(100):
                page.add_pair(f"key-{i:04d}".encode(), b"x" * 20)

    def test_fits_predicts_add(self, page):
        while page.fits(8, 20):
            page.add_pair(b"k" * 8, b"v" * 20)
        with pytest.raises(PageFullError):
            page.add_pair(b"k" * 8, b"v" * 20)

    def test_out_of_range_slot(self, page):
        page.add_pair(b"a", b"b")
        with pytest.raises(IndexError):
            page.get_pair(1)
        with pytest.raises(IndexError):
            page.get_pair(-1)


class TestFind:
    def test_find_present_key(self, page):
        page.add_pair(b"alpha", b"1")
        page.add_pair(b"beta", b"2")
        assert page.find_inline(b"beta") == 1
        assert page.find_inline(b"alpha") == 0

    def test_find_absent_key(self, page):
        page.add_pair(b"alpha", b"1")
        assert page.find_inline(b"alphb") == -1
        assert page.find_inline(b"alph") == -1
        assert page.find_inline(b"alphaa") == -1

    def test_find_skips_big_slots(self, page):
        page.add_big_ref(0x0801, 100, 200, b"bigkey-prefix")
        assert page.find_inline(b"bigkey-prefix") == -1


class TestDelete:
    def test_delete_only_slot(self, page):
        page.add_pair(b"k", b"v")
        page.delete_slot(0)
        assert page.nslots == 0
        assert page.free_space == 256 - PAGE_HDR_SIZE

    def test_delete_middle_slot_compacts(self, page):
        page.add_pair(b"k0", b"v0")
        page.add_pair(b"k1", b"v1")
        page.add_pair(b"k2", b"v2")
        page.delete_slot(1)
        assert page.nslots == 2
        assert page.get_pair(0) == (b"k0", b"v0")
        assert page.get_pair(1) == (b"k2", b"v2")

    def test_delete_frees_space_for_reuse(self, page):
        # fill, delete all, fill again -- identical capacity both times
        count1 = 0
        while page.fits(4, 12):
            page.add_pair(b"a" * 4, b"b" * 12)
            count1 += 1
        for _ in range(count1):
            page.delete_slot(0)
        count2 = 0
        while page.fits(4, 12):
            page.add_pair(b"c" * 4, b"d" * 12)
            count2 += 1
        assert count1 == count2

    def test_delete_first_and_last(self, page):
        for i in range(4):
            page.add_pair(f"k{i}".encode(), f"val{i}".encode())
        page.delete_slot(3)
        page.delete_slot(0)
        assert [page.get_key(i) for i in range(page.nslots)] == [b"k1", b"k2"]

    def test_interleaved_delete_insert(self, page):
        page.add_pair(b"aa", b"11")
        page.add_pair(b"bb", b"2222")
        page.delete_slot(0)
        page.add_pair(b"cc", b"333333")
        assert page.get_pair(0) == (b"bb", b"2222")
        assert page.get_pair(1) == (b"cc", b"333333")


class TestBigRefs:
    def test_big_ref_roundtrip(self, page):
        page.add_big_ref(0x1234 & 0x7FFF, 5000, 10000, b"x" * 30)
        assert page.slot_is_big(0)
        oaddr, klen, dlen, prefix = page.get_big_ref(0)
        assert oaddr == 0x1234 & 0x7FFF
        assert klen == 5000
        assert dlen == 10000
        assert prefix == b"x" * BIG_KEY_PREFIX  # truncated to prefix size

    def test_short_key_prefix_kept_whole(self, page):
        page.add_big_ref(0x0801, 3, 99999, b"abc")
        _o, _k, _d, prefix = page.get_big_ref(0)
        assert prefix == b"abc"

    def test_big_and_inline_coexist(self, page):
        page.add_pair(b"small", b"pair")
        page.add_big_ref(0x0801, 100, 100, b"bigprefix")
        page.add_pair(b"more", b"data")
        assert not page.slot_is_big(0)
        assert page.slot_is_big(1)
        assert not page.slot_is_big(2)
        assert page.get_pair(2) == (b"more", b"data")

    def test_get_pair_on_big_slot_raises(self, page):
        page.add_big_ref(0x0801, 1, 1, b"k")
        with pytest.raises(ValueError):
            page.get_pair(0)
        with pytest.raises(ValueError):
            page.get_key(0)

    def test_get_big_ref_on_inline_slot_raises(self, page):
        page.add_pair(b"k", b"v")
        with pytest.raises(ValueError):
            page.get_big_ref(0)

    def test_delete_big_slot(self, page):
        page.add_pair(b"k", b"v")
        page.add_big_ref(0x0801, 10, 20, b"prefix")
        page.delete_slot(1)
        assert page.nslots == 1
        assert page.get_pair(0) == (b"k", b"v")


class TestHeaderFields:
    def test_ovfl_addr_setter(self, page):
        page.ovfl_addr = 0x0805
        assert page.ovfl_addr == 0x0805

    def test_flags_setter(self, page):
        page.flags = 3
        assert page.flags == 3

    def test_iter_slots(self, page):
        page.add_pair(b"a", b"1")
        page.add_big_ref(0x0801, 9, 9, b"b")
        assert list(page.iter_slots()) == [(0, False), (1, True)]


class TestSizePredicates:
    def test_is_big_pair_threshold(self):
        # a pair that exactly fills an empty 256-byte page is not big
        cap = 256 - PAGE_HDR_SIZE - SLOT_SIZE
        assert not is_big_pair(10, cap - 10, 256)
        assert is_big_pair(10, cap - 9, 256)

    def test_big_ref_bytes_bounded(self):
        assert big_ref_bytes(5) == SLOT_SIZE + 10 + 5
        assert big_ref_bytes(5000) == SLOT_SIZE + 10 + BIG_KEY_PREFIX

    def test_oversized_inline_rejected(self, page):
        with pytest.raises(ValueError):
            page.add_pair(b"k" * 0x8000, b"")
