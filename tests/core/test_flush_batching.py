"""Batched write-back: coalesced flushes cost measurably fewer syscalls.

The acceptance criterion of the batched flush is asserted here with real
IOStats deltas on a 1000-insert dictionary workload: the batched path
must issue strictly fewer write syscalls than the page-at-a-time path
while writing exactly the same pages.
"""

from repro.core.buffer import BufferPool
from repro.core.table import HashTable
from repro.storage.memfile import MemPagedFile
from repro.workloads.dictionary import dictionary_words

PAGESIZE = 256


def _identity_pool(cachesize=10**6):
    file = MemPagedFile(PAGESIZE)
    return file, BufferPool(file, PAGESIZE, cachesize, lambda key: key)


def _dirty(pool, pagenos):
    for pgno in pagenos:
        hdr = pool.get(pgno, create=True)
        hdr.page[:4] = pgno.to_bytes(4, "big")
        pool.mark_dirty(hdr)


def test_contiguous_run_is_one_syscall():
    file, pool = _identity_pool()
    _dirty(pool, range(5))
    before = file.stats.snapshot()
    assert pool.flush() == 5
    delta = file.stats.snapshot() - before
    assert delta.page_writes == 5
    assert delta.syscalls == 1  # one vectored write for the whole run
    assert pool.metrics()["batched_runs"] == 1
    assert pool.metrics()["writebacks"] == 5
    for pgno in range(5):
        assert file.read_page(pgno)[:4] == pgno.to_bytes(4, "big")


def test_holes_split_runs():
    file, pool = _identity_pool()
    _dirty(pool, [0, 1, 2, 7, 8, 20])
    before = file.stats.snapshot()
    assert pool.flush() == 6
    delta = file.stats.snapshot() - before
    # [0,1,2] one vectored write, [7,8] another, [20] a plain write.
    assert delta.page_writes == 6
    assert delta.syscalls == 3
    assert pool.metrics()["batched_runs"] == 2


def test_unbatched_path_is_page_at_a_time():
    file, pool = _identity_pool()
    _dirty(pool, range(5))
    before = file.stats.snapshot()
    assert pool.flush(batched=False) == 5
    delta = file.stats.snapshot() - before
    assert delta.page_writes == 5
    assert delta.syscalls == 5
    assert pool.metrics()["batched_runs"] == 0


def test_flush_is_idempotent():
    file, pool = _identity_pool()
    _dirty(pool, range(4))
    assert pool.flush() == 4
    before = file.stats.snapshot()
    assert pool.flush() == 0  # nothing dirty: no I/O at all
    assert file.stats.snapshot() - before == before - before


def _flush_delta(tmp_path, batched):
    """1000 dictionary inserts buffered in a big cache, then one flush;
    returns (pages_written, IOSnapshot delta of the flush, path)."""
    path = tmp_path / f"dict-{'batched' if batched else 'plain'}.hash"
    t = HashTable.create(path, bsize=512, cachesize=1 << 22)
    for i, word in enumerate(dictionary_words(1000)):
        t.put(word, f"value-{i:06d}".encode())
    before = t.io_stats.snapshot()
    n = t.pool.flush(batched=batched)
    delta = t.io_stats.snapshot() - before
    t.close()
    return n, delta, path


def test_batched_flush_beats_per_page_on_dictionary_workload(tmp_path):
    n_plain, plain, _ = _flush_delta(tmp_path, batched=False)
    n_batch, batch, path = _flush_delta(tmp_path, batched=True)
    # Identical work: same number of dirty pages written back.
    assert n_plain == n_batch > 10
    assert plain.page_writes == batch.page_writes == n_plain
    # The per-page path pays one write(2) per page ...
    assert plain.syscalls == n_plain
    # ... and coalescing beats it. A freshly-filled table flushes long
    # contiguous runs, so the saving is large, not marginal.
    assert batch.syscalls < plain.syscalls // 2
    # The batched flush left a table identical to what was written.
    t = HashTable.open_file(path, readonly=True)
    try:
        for i, word in enumerate(dictionary_words(1000)):
            assert t.get(word) == f"value-{i:06d}".encode()
    finally:
        t.close()
