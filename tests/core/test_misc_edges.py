"""Remaining edge cases across modules."""

import pytest

from repro.core.compat.ndbm import dbm_open
from repro.core.table import HashTable
from repro.storage.pagedfile import PagedFile


class TestPagedFileReadonly:
    def test_write_to_readonly_fails(self, tmp_path):
        p = tmp_path / "f.db"
        PagedFile(p, 64, create=True).close()
        f = PagedFile(p, 64, readonly=True)
        with pytest.raises(OSError):
            f.write_page(0, b"x")
        f.close()


class TestDbmOpenFlags:
    def test_open_missing_for_write_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            dbm_open(tmp_path / "missing.db", "w")

    def test_open_r_creates_nothing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            dbm_open(tmp_path / "nothing.db", "r")
        assert not (tmp_path / "nothing.db").exists()

    def test_create_params_only_apply_on_create(self, tmp_path):
        p = tmp_path / "x.db"
        with dbm_open(p, "c", bsize=512, ffactor=16) as db:
            assert db.table.header.bsize == 512
        # reopening ignores geometry kwargs (geometry lives in the file)
        with dbm_open(p, "w") as db:
            assert db.table.header.bsize == 512


class TestCreateErrorPaths:
    def test_create_in_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            HashTable.create(tmp_path / "no" / "such" / "dir" / "t.db")

    def test_anonymous_tables_are_independent(self):
        a = HashTable.create(None)
        b = HashTable.create(None)
        a.put(b"k", b"A")
        b.put(b"k", b"B")
        assert a.get(b"k") == b"A"
        assert b.get(b"k") == b"B"
        a.close()
        b.close()

    def test_double_close_then_reopen_path(self, tmp_path):
        p = tmp_path / "t.db"
        t = HashTable.create(p)
        t.put(b"k", b"v")
        t.close()
        t.close()
        t2 = HashTable.open_file(p)
        assert t2.get(b"k") == b"v"
        t2.close()


class TestSuiteReopenSemantics:
    def test_disk_suite_without_reopen(self, tmp_path):
        """reopen=False keeps the warm pool -- read I/O collapses."""
        from repro.bench.adapters import NewHashAdapter
        from repro.bench.suites import disk_suite
        from repro.workloads import passwd_pairs

        pairs = list(passwd_pairs(40))
        warm = disk_suite(
            NewHashAdapter(str(tmp_path)), pairs, nelem_hint=len(pairs),
            reopen=False,
        )
        assert warm["read"].io.page_reads == 0

    def test_memory_suite_on_dynahash(self, tmp_path):
        from repro.bench.adapters import DynahashAdapter
        from repro.bench.suites import memory_suite
        from repro.workloads import passwd_pairs

        results = memory_suite(DynahashAdapter(str(tmp_path)), list(passwd_pairs(40)))
        assert results["create/read"].elapsed >= 0


class TestStatsAfterClose:
    def test_io_stats_readable_after_close(self, tmp_path):
        t = HashTable.create(tmp_path / "t.db")
        t.put(b"k", b"v")
        t.close()
        # the counter object outlives the fd (benchmarks rely on this)
        assert t.io_stats.page_writes > 0
