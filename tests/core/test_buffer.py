"""Unit tests for the LRU buffer pool."""

import pytest

from repro.core.buffer import MIN_BUFFERS, BufferPool
from repro.storage.memfile import MemPagedFile


def make_pool(cachesize=1024, bsize=64, prewrite=()):
    """Pool over a memfile where key ('B', n) maps to page n and
    ('O', n) maps to page 1000+n.

    ``prewrite`` seeds pages before the pool is built -- the pool assumes
    exclusive ownership of the file from construction on (it tracks the
    write high-water mark to skip hole reads).
    """
    f = MemPagedFile(bsize)
    for pageno, data in prewrite:
        f.write_page(pageno, data)

    def addr(key):
        kind, n = key
        return n if kind == "B" else 1000 + n

    return f, BufferPool(f, bsize, cachesize, addr)


class TestBasics:
    def test_get_faults_in_and_caches(self):
        f, pool = make_pool(prewrite=[(3, b"content")])
        h1 = pool.get(("B", 3))
        assert bytes(h1.page[:7]) == b"content"
        h2 = pool.get(("B", 3))
        assert h1 is h2
        assert pool.hits == 1
        assert pool.misses == 1

    def test_hole_fault_skips_read(self):
        """Pages beyond the file's high-water mark zero-fill with no I/O
        (a pre-sized table's untouched buckets are free to fault)."""
        f, pool = make_pool(prewrite=[(0, b"x")])
        reads = f.stats.page_reads
        h = pool.get(("B", 500))
        assert f.stats.page_reads == reads  # no read for a known hole
        assert h.page == bytearray(64)
        # once written back, the page is no longer a hole
        h.dirty = True
        pool.flush()
        pool.invalidate(("B", 500))
        pool.get(("B", 500))
        assert f.stats.page_reads == reads + 1

    def test_create_skips_read(self):
        f, pool = make_pool()
        reads_before = f.stats.page_reads
        h = pool.get(("B", 5), create=True)
        assert f.stats.page_reads == reads_before
        assert h.dirty
        assert h.page == bytearray(64)

    def test_dirty_written_back_on_flush(self):
        f, pool = make_pool()
        h = pool.get(("B", 0), create=True)
        h.page[:5] = b"dirty"
        pool.flush()
        assert f.read_page(0)[:5] == b"dirty"
        assert not h.dirty

    def test_clean_pages_not_rewritten(self):
        f, pool = make_pool()
        pool.get(("B", 0))
        writes = f.stats.page_writes
        pool.flush()
        assert f.stats.page_writes == writes

    def test_invalid_params(self):
        f = MemPagedFile(64)
        with pytest.raises(ValueError):
            BufferPool(f, 0, 100, lambda k: 0)
        with pytest.raises(ValueError):
            BufferPool(f, 64, -1, lambda k: 0)


class TestEviction:
    def test_lru_victim_is_least_recent(self):
        f, pool = make_pool(cachesize=0)  # max_buffers == MIN_BUFFERS
        for i in range(MIN_BUFFERS):
            pool.get(("B", i))
        pool.get(("B", 0))  # refresh 0
        pool.get(("B", 99))  # evicts 1, the LRU
        assert ("B", 1) not in pool
        assert ("B", 0) in pool

    def test_evicted_dirty_page_written(self):
        f, pool = make_pool(cachesize=0)
        h = pool.get(("B", 0), create=True)
        h.page[:3] = b"abc"
        for i in range(1, MIN_BUFFERS + 2):
            pool.get(("B", i))
        assert ("B", 0) not in pool
        assert f.read_page(0)[:3] == b"abc"

    def test_pinned_pages_survive_pressure(self):
        f, pool = make_pool(cachesize=0)
        h = pool.get(("B", 0))
        h.pin()
        for i in range(1, MIN_BUFFERS + 5):
            pool.get(("B", i))
        assert ("B", 0) in pool
        h.unpin()

    def test_budget_respected(self):
        f, pool = make_pool(cachesize=64 * 8)
        for i in range(50):
            pool.get(("B", i))
        assert len(pool) <= 8

    def test_chain_evicted_with_primary(self):
        """The paper's invariant: an overflow buffer leaves the pool with
        its predecessor."""
        f, pool = make_pool(cachesize=64 * 6)
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        # Fill the pool so bucket 0 becomes the LRU victim
        for i in range(1, 10):
            pool.get(("B", i))
        assert ("B", 0) not in pool
        assert ("O", 1) not in pool

    def test_pinned_chain_blocks_whole_chain_eviction(self):
        f, pool = make_pool(cachesize=64 * 6)
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        ovfl.pin()
        for i in range(1, 10):
            pool.get(("B", i))
        # primary cannot leave while its chained overflow is pinned
        assert ("B", 0) in pool
        assert ("O", 1) in pool
        ovfl.unpin()


class TestInvalidate:
    def test_invalidate_drops_without_write(self):
        f, pool = make_pool()
        h = pool.get(("O", 1), create=True)
        h.page[:4] = b"gone"
        pool.invalidate(("O", 1))
        assert ("O", 1) not in pool
        assert f.read_page(1001)[:4] == b"\0\0\0\0"

    def test_invalidate_absent_is_noop(self):
        f, pool = make_pool()
        pool.invalidate(("O", 42))

    def test_invalidate_pinned_asserts(self):
        f, pool = make_pool()
        h = pool.get(("O", 1), create=True)
        h.pin()
        with pytest.raises(AssertionError):
            pool.invalidate(("O", 1))
        h.unpin()


class TestDropAll:
    def test_drop_all_flushes_and_empties(self):
        f, pool = make_pool()
        h = pool.get(("B", 0), create=True)
        h.page[:2] = b"ok"
        pool.drop_all()
        assert len(pool) == 0
        assert f.read_page(0)[:2] == b"ok"

    def test_unpin_below_zero_asserts(self):
        f, pool = make_pool()
        h = pool.get(("B", 0))
        with pytest.raises(AssertionError):
            h.unpin()


class TestChainReverseMap:
    """The O(1) invalidate rewrite: the reverse-edge map must stay exactly
    in sync with the headers' chain_next hints."""

    def test_invalidate_clears_predecessor_hint(self):
        f, pool = make_pool()
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        pool.invalidate(("O", 1))
        assert prim.chain_next is None
        assert pool._chain_prev == {}

    def test_invalidate_middle_of_chain(self):
        f, pool = make_pool()
        a = pool.get(("B", 0), create=True)
        b = pool.get(("O", 1), create=True)
        c = pool.get(("O", 2), create=True)
        pool.link_chain(a, b)
        pool.link_chain(b, c)
        pool.invalidate(("O", 1))
        assert a.chain_next is None  # pred hint cleared
        assert ("O", 2) not in pool._chain_prev  # succ edge dropped too

    def test_relink_clears_old_predecessor(self):
        # a freed overflow page reused under a different bucket must not
        # leave the old bucket pointing at it
        f, pool = make_pool()
        old = pool.get(("B", 0), create=True)
        new = pool.get(("B", 1), create=True)
        ovfl = pool.get(("O", 7), create=True)
        pool.link_chain(old, ovfl)
        pool.link_chain(new, ovfl)
        assert old.chain_next is None
        assert new.chain_next == ("O", 7)
        assert pool._chain_prev[("O", 7)] == ("B", 1)

    def test_relink_successor_clears_old_edge(self):
        f, pool = make_pool()
        prim = pool.get(("B", 0), create=True)
        o1 = pool.get(("O", 1), create=True)
        o2 = pool.get(("O", 2), create=True)
        pool.link_chain(prim, o1)
        pool.link_chain(prim, o2)  # prim's successor replaced
        assert ("O", 1) not in pool._chain_prev
        assert pool._chain_prev[("O", 2)] == ("B", 0)

    def test_unlink_chain_drops_edge(self):
        f, pool = make_pool()
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        pool.unlink_chain(prim)
        assert prim.chain_next is None
        assert pool._chain_prev == {}

    def test_eviction_cleans_edges(self):
        f, pool = make_pool(cachesize=64 * 6)
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        for i in range(1, 10):
            pool.get(("B", i))
        assert ("B", 0) not in pool
        assert pool._chain_prev == {}

    def test_drop_all_clears_map(self):
        f, pool = make_pool()
        prim = pool.get(("B", 0), create=True)
        ovfl = pool.get(("O", 1), create=True)
        pool.link_chain(prim, ovfl)
        pool.drop_all()
        assert pool._chain_prev == {}


class TestMetrics:
    def test_counters_track_activity(self):
        f, pool = make_pool(cachesize=0)
        for i in range(MIN_BUFFERS + 2):
            pool.get(("B", i), create=True)
        pool.get(("B", MIN_BUFFERS + 1))  # hit
        m = pool.metrics()
        assert m["misses"] == MIN_BUFFERS + 2
        assert m["hits"] == 1
        assert m["evictions"] == 2
        assert m["writebacks"] == 2  # created pages are dirty
        assert m["resident"] == len(pool)
        assert m["max_buffers"] == MIN_BUFFERS

    def test_invalidations_counted_only_when_resident(self):
        f, pool = make_pool()
        pool.get(("O", 1), create=True)
        pool.invalidate(("O", 1))
        pool.invalidate(("O", 1))  # absent: no-op, not counted
        assert pool.metrics()["invalidations"] == 1
        assert pool.invalidations == 1

    def test_registry_publishes_pool_metrics(self):
        from repro.obs.registry import Registry

        f = MemPagedFile(64)
        obs = Registry("buffer")
        pool = BufferPool(f, 64, 1024, lambda k: k, obs=obs)
        pool.get(5, create=True)
        d = obs.as_dict()
        assert d["misses"] == 1
        assert d["resident"] == 1
        assert d["max_buffers"] == pool.max_buffers
