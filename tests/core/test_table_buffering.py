"""Buffer-pool interaction: tiny pools, cache behaviour, spill to temp.

These exercise the paper's Figure 7 claims at correctness level: results
must be identical whatever the buffer pool size.
"""

import pytest

from repro.core.table import HashTable


@pytest.mark.parametrize("cachesize", [0, 256, 4096, 1 << 16, 1 << 20])
def test_results_independent_of_pool_size(cachesize):
    t = HashTable.create(
        None, bsize=64, ffactor=8, cachesize=cachesize, in_memory=True
    )
    data = {f"key-{i}".encode(): (f"val-{i}".encode() * (1 + i % 4)) for i in range(400)}
    for k, v in data.items():
        t.put(k, v)
    for k, v in data.items():
        assert t.get(k) == v, (cachesize, k)
    assert dict(t.items()) == data
    t.check_invariants()
    t.close()


def test_tiny_pool_disk_table_roundtrip(tmp_path):
    """cachesize=0 on a real file: every operation close to uncached."""
    p = tmp_path / "tiny.db"
    with HashTable.create(p, bsize=64, cachesize=0) as t:
        for i in range(300):
            t.put(f"k{i}".encode(), f"v{i}".encode())
        for i in range(300):
            assert t.get(f"k{i}".encode()) == f"v{i}".encode()
    with HashTable.open_file(p, cachesize=0) as t:
        assert len(t) == 300
        t.check_invariants()


def test_big_cache_eliminates_rereads(tmp_path):
    """With a pool larger than the file, the read phase does no I/O --
    the mechanism behind the paper's 80% read-test improvement."""
    p = tmp_path / "cached.db"
    t = HashTable.create(p, bsize=256, ffactor=8, cachesize=1 << 20)
    for i in range(1000):
        t.put(f"key-{i}".encode(), b"value")
    reads_before = t.io_stats.page_reads
    for i in range(1000):
        t.get(f"key-{i}".encode())
    assert t.io_stats.page_reads == reads_before
    t.close()


def test_small_cache_causes_rereads(tmp_path):
    p = tmp_path / "uncached.db"
    t = HashTable.create(p, bsize=256, ffactor=8, cachesize=1024)
    for i in range(1000):
        t.put(f"key-{i}".encode(), b"value")
    reads_before = t.io_stats.page_reads
    for i in range(1000):
        t.get(f"key-{i}".encode())
    assert t.io_stats.page_reads > reads_before + 500
    t.close()


def test_anonymous_table_spills_to_temp_file():
    """path=None: 'limits its main memory utilization and swaps pages out
    to temporary storage' (the paper's memory-resident mode)."""
    t = HashTable.create(None, bsize=64, cachesize=512)
    for i in range(500):
        t.put(f"key-{i}".encode(), b"v" * 16)
    # the anonymous backing file received real page traffic
    assert t.io_stats.page_writes > 0
    for i in range(500):
        assert t.get(f"key-{i}".encode()) == b"v" * 16
    t.close()


def test_pure_memory_table_never_touches_disk():
    t = HashTable.create(None, in_memory=True)
    t.put(b"k", b"v")
    assert t.get(b"k") == b"v"
    # MemPagedFile has no real file behind it
    assert t._file.path is None
    t.close()


def test_pool_stats_exposed(tmp_path):
    t = HashTable.create(tmp_path / "s.db", cachesize=1 << 16)
    for i in range(200):
        t.put(f"k{i}".encode(), b"v")
    assert t.pool.hits > 0
    assert t.pool.misses > 0
    t.close()
