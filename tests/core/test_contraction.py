"""Linear-hash contraction (``min_fill``): the inverse of the paper's
splits.  Delete churn below the utilization floor merges the highest
bucket into its buddy, rolls the masks back, and frees the bucket's page
to the pager freelist -- which persists across reopen and feeds later
growth."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConcurrentModificationError,
    InvalidParameterError,
)
from repro.core.table import HashTable

PAIRS = [(f"key{i:05d}".encode(), f"val{i:05d}".encode() * 4) for i in range(2000)]


def _churn(table, nput=2000, ndel=1800):
    table.put_many(PAIRS[:nput])
    table.sync()  # materialize the grown pages so frees are physical
    for k, _ in PAIRS[:ndel]:
        table.delete(k)


class TestParameter:
    def test_min_fill_validated(self):
        for bad in (-0.1, 1.0, 2.5):
            with pytest.raises(InvalidParameterError):
                HashTable.create(None, in_memory=True, min_fill=bad)

    def test_default_never_contracts(self):
        with HashTable.create(None, in_memory=True, nelem=100) as t:
            _churn(t)
            assert t.stats.merges == 0
            assert t.stats.pages_freed == 0

    def test_min_fill_survives_reopen_as_argument(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, min_fill=0.3)
        assert t.min_fill == 0.3
        t.close()
        t = HashTable.open_file(path, min_fill=0.4)
        assert t.min_fill == 0.4
        t.close()


class TestContraction:
    def test_churn_contracts_and_survivors_stay_readable(self):
        with HashTable.create(None, in_memory=True, min_fill=0.5) as t:
            t.put_many(PAIRS)
            t.sync()
            grown = t.header.max_bucket
            for k, _ in PAIRS[:1800]:
                t.delete(k)
            assert t.header.max_bucket < grown
            assert t.stats.merges > 0
            assert t.stats.pages_freed > 0
            t.check_invariants()
            for k, v in PAIRS[1800:]:
                assert t.get(k) == v
            for k, _ in PAIRS[:1800]:
                assert t.get(k) is None

    def test_mask_rollback_keeps_invariants_every_step(self):
        # invariants re-checked after every delete: each merge must leave
        # low_mask == high_mask >> 1 and the bucket range consistent
        with HashTable.create(None, in_memory=True, min_fill=0.5) as t:
            t.put_many(PAIRS[:600])
            for k, _ in PAIRS[:590]:
                t.delete(k)
                t.check_invariants()

    def test_contraction_stops_file_growth(self, tmp_path):
        # repeated churn cycles: with contraction the file reaches a
        # steady state instead of growing monotonically
        path = tmp_path / "cycle.db"
        t = HashTable.create(path, min_fill=0.5)
        sizes = []
        for _ in range(4):
            t.put_many(PAIRS)
            for k, _ in PAIRS[:1800]:
                t.delete(k)
            t.sync()
            sizes.append(t._file.npages())
        t.close()
        assert max(sizes[1:]) <= sizes[0] * 1.05

    def test_re_expansion_after_contraction(self):
        # grow -> shrink -> grow again: freed pages must be reusable and
        # the table fully consistent through the round trip
        with HashTable.create(None, in_memory=True, min_fill=0.5) as t:
            _churn(t)
            merges = t.stats.merges
            assert merges > 0
            t.put_many(PAIRS)
            t.check_invariants()
            for k, v in PAIRS:
                assert t.get(k) == v

    def test_merge_and_free_hooks(self):
        with HashTable.create(None, in_memory=True, min_fill=0.5) as t:
            merges, frees = [], []
            t.hooks.subscribe("on_merge", merges.append)
            t.hooks.subscribe("on_free", frees.append)
            _churn(t)
            assert merges and frees
            for p in merges:
                assert p["reason"] == "floor"
                assert set(p) >= {"bucket", "buddy", "nkeys", "freed_page"}
                assert p["buddy"] < p["bucket"]
            for p in frees:
                assert p["kind"] == "bucket"
                assert p["pageno"] > 0
            assert len(merges) == t.stats.merges
            assert len(frees) == t.stats.pages_freed

    def test_stat_exposes_contraction(self):
        with HashTable.create(None, in_memory=True, min_fill=0.5) as t:
            _churn(t)
            st = t.stat()
            assert st["method"]["min_fill"] == 0.5
            assert st["method"]["merges"] == t.stats.merges > 0
            assert st["method"]["pages_freed"] > 0
            assert st["space"]["freelist_pages"] >= 0


class TestPersistence:
    def test_freelist_survives_reopen(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, min_fill=0.5)
        _churn(t)
        t.sync()
        freed = t._file.freelist.pages()
        t.close()
        t = HashTable.open_file(path)
        try:
            # sync/close trim the tail run; the interior pages reload
            assert set(t._file.freelist.pages()) <= set(freed)
            t.check_invariants()
            for k, v in PAIRS[1800:]:
                assert t.get(k) == v
        finally:
            t.close()

    def test_close_trims_tail_free_run(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, min_fill=0.5)
        t.put_many(PAIRS)
        grown_pages = None
        for k, _ in PAIRS[:1800]:
            t.delete(k)
        grown_pages = t._file.npages()
        t.close()
        import os

        shrunk = os.path.getsize(path)
        t = HashTable.open_file(path)
        try:
            assert t._file.npages() <= grown_pages
            t.check_invariants()
        finally:
            t.close()
        assert shrunk == os.path.getsize(path)


class TestTransactions:
    def test_abort_rewinds_merges_and_freelist(self, tmp_path):
        t = HashTable.create(
            tmp_path / "t.db", min_fill=0.5, durability="wal"
        )
        try:
            t.put_many(PAIRS[:500])
            t.checkpoint()
            before_bucket = t.header.max_bucket
            before_free = t._file.freelist.pages()
            t.begin()
            for k, _ in PAIRS[:450]:
                t.delete(k)
            assert t.header.max_bucket < before_bucket  # merged in-txn
            t.abort()
            assert t.header.max_bucket == before_bucket
            assert t._file.freelist.pages() == before_free
            t.check_invariants()
            for k, v in PAIRS[:500]:
                assert t.get(k) == v
        finally:
            t.close()

    def test_committed_contraction_recovers(self, tmp_path):
        path = tmp_path / "t.db"
        t = HashTable.create(path, min_fill=0.5, durability="wal")
        t.put_many(PAIRS[:500])
        t.begin()
        for k, _ in PAIRS[:450]:
            t.delete(k)
        t.commit()
        merged_bucket = t.header.max_bucket
        del t  # kill -9: recovery must replay the committed merges
        t = HashTable.open_file(path, durability="wal")
        try:
            assert t.header.max_bucket == merged_bucket
            t.check_invariants()
            for k, v in PAIRS[450:500]:
                assert t.get(k) == v
        finally:
            t.close()


class TestCursors:
    def test_concurrent_cursor_fails_fast_across_merge(self):
        t = HashTable.create(
            None, in_memory=True, min_fill=0.5, concurrent=True
        )
        try:
            t.put_many(PAIRS[:400])
            cur = t.cursor()
            assert cur.first() is not None
            for k, _ in PAIRS[:380]:
                t.delete(k)
            assert t.stats.merges > 0
            with pytest.raises(ConcurrentModificationError):
                for _ in range(400):
                    if cur.next() is None:
                        raise AssertionError("cursor never failed fast")
        finally:
            t.close()
