"""Basic get/put/delete behaviour of the hash table."""

import pytest

from repro.core.errors import (
    ClosedError,
    InvalidParameterError,
    ReadOnlyError,
)
from repro.core.table import HashTable


class TestPutGet:
    def test_put_then_get(self, mem_table):
        mem_table.put(b"key", b"value")
        assert mem_table.get(b"key") == b"value"

    def test_get_absent_returns_default(self, mem_table):
        assert mem_table.get(b"nope") is None
        assert mem_table.get(b"nope", b"dflt") == b"dflt"

    def test_replace_overwrites(self, mem_table):
        mem_table.put(b"k", b"old")
        mem_table.put(b"k", b"new")
        assert mem_table.get(b"k") == b"new"
        assert len(mem_table) == 1

    def test_insert_no_replace_preserves(self, mem_table):
        mem_table.put(b"k", b"old")
        assert mem_table.put(b"k", b"new", replace=False) is False
        assert mem_table.get(b"k") == b"old"

    def test_replace_with_different_size(self, mem_table):
        mem_table.put(b"k", b"short")
        mem_table.put(b"k", b"much longer value " * 3)
        assert mem_table.get(b"k") == b"much longer value " * 3
        mem_table.put(b"k", b"s")
        assert mem_table.get(b"k") == b"s"
        assert len(mem_table) == 1

    def test_empty_key_and_value(self, mem_table):
        mem_table.put(b"", b"")
        assert mem_table.get(b"") == b""
        assert b"" in mem_table

    def test_binary_keys_and_values(self, mem_table):
        key = bytes(range(256))
        value = bytes(reversed(range(256)))
        mem_table.put(key, value)
        assert mem_table.get(key) == value

    def test_contains(self, mem_table):
        mem_table.put(b"yes", b"1")
        assert b"yes" in mem_table
        assert b"no" not in mem_table

    def test_non_bytes_rejected(self, mem_table):
        with pytest.raises(TypeError):
            mem_table.put("str", b"v")
        with pytest.raises(TypeError):
            mem_table.put(b"k", 42)

    def test_bytearray_accepted(self, mem_table):
        mem_table.put(bytearray(b"ba"), bytearray(b"val"))
        assert mem_table.get(b"ba") == b"val"

    def test_many_keys(self, mem_table):
        for i in range(1000):
            mem_table.put(f"key{i}".encode(), f"value{i}".encode())
        assert len(mem_table) == 1000
        for i in range(0, 1000, 37):
            assert mem_table.get(f"key{i}".encode()) == f"value{i}".encode()
        mem_table.check_invariants()


class TestDelete:
    def test_delete_present(self, mem_table):
        mem_table.put(b"k", b"v")
        assert mem_table.delete(b"k") is True
        assert mem_table.get(b"k") is None
        assert len(mem_table) == 0

    def test_delete_absent(self, mem_table):
        assert mem_table.delete(b"ghost") is False

    def test_delete_twice(self, mem_table):
        mem_table.put(b"k", b"v")
        assert mem_table.delete(b"k")
        assert not mem_table.delete(b"k")

    def test_delete_then_reinsert(self, mem_table):
        mem_table.put(b"k", b"v1")
        mem_table.delete(b"k")
        mem_table.put(b"k", b"v2")
        assert mem_table.get(b"k") == b"v2"

    def test_delete_half_of_many(self, mem_table):
        for i in range(500):
            mem_table.put(f"k{i}".encode(), f"v{i}".encode())
        for i in range(0, 500, 2):
            assert mem_table.delete(f"k{i}".encode())
        assert len(mem_table) == 250
        for i in range(500):
            expected = None if i % 2 == 0 else f"v{i}".encode()
            assert mem_table.get(f"k{i}".encode()) == expected
        mem_table.check_invariants()

    def test_file_never_contracts(self, mem_table):
        """Paper footnote 6: buckets stay allocated after deletes."""
        for i in range(500):
            mem_table.put(f"k{i}".encode(), b"v" * 20)
        buckets = mem_table.nbuckets
        for i in range(500):
            mem_table.delete(f"k{i}".encode())
        assert mem_table.nbuckets == buckets
        assert len(mem_table) == 0


class TestLifecycle:
    def test_closed_table_rejects_ops(self, tmp_path):
        t = HashTable.create(tmp_path / "t.db")
        t.close()
        assert t.closed
        with pytest.raises(ClosedError):
            t.get(b"k")
        with pytest.raises(ClosedError):
            t.put(b"k", b"v")
        t.close()  # idempotent

    def test_context_manager(self, tmp_path):
        with HashTable.create(tmp_path / "t.db") as t:
            t.put(b"k", b"v")
        assert t.closed

    def test_readonly_table_rejects_writes(self, tmp_path):
        p = tmp_path / "t.db"
        with HashTable.create(p) as t:
            t.put(b"k", b"v")
        r = HashTable.open_file(p, readonly=True)
        assert r.get(b"k") == b"v"
        with pytest.raises(ReadOnlyError):
            r.put(b"x", b"y")
        with pytest.raises(ReadOnlyError):
            r.delete(b"k")
        r.close()


class TestParameters:
    def test_bad_bsize(self):
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, bsize=63, in_memory=True)
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, bsize=100, in_memory=True)  # not power of 2
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, bsize=65536, in_memory=True)  # > 32K

    def test_bad_ffactor(self):
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, ffactor=0, in_memory=True)

    def test_bad_nelem(self):
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, nelem=0, in_memory=True)

    def test_bad_cachesize(self):
        with pytest.raises(InvalidParameterError):
            HashTable.create(None, cachesize=-1, in_memory=True)

    def test_nelem_presizes_buckets(self):
        t = HashTable.create(None, nelem=1000, ffactor=10, in_memory=True)
        # 1000/10 = 100 buckets -> rounded to 128
        assert t.nbuckets == 128
        t.close()

    def test_presized_table_does_not_split_while_filling(self):
        t = HashTable.create(None, nelem=512, ffactor=8, bsize=1024, in_memory=True)
        for i in range(512):
            t.put(f"key-{i}".encode(), b"v")
        assert t.stats.splits == 0
        t.close()

    def test_table_grows_past_nelem(self):
        """Unlike hsearch: 'Files may grow beyond nelem elements.'"""
        t = HashTable.create(None, nelem=64, ffactor=8, in_memory=True)
        for i in range(1000):
            t.put(f"key-{i}".encode(), b"v")
        assert len(t) == 1000
        assert t.nbuckets > 8
        t.check_invariants()
        t.close()

    def test_min_bsize_is_64(self):
        t = HashTable.create(None, bsize=64, in_memory=True)
        t.put(b"k", b"v")
        assert t.get(b"k") == b"v"
        t.close()
