"""Equation 1 parameterization helper and table stats."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.table import HashTable, suggest_parameters


class TestEquation1:
    """(average_pair_length + 4) * ffactor >= bsize"""

    def test_given_bsize_computes_ffactor(self):
        bsize, ffactor = suggest_parameters(28, bsize=256)
        assert bsize == 256
        assert (28 + 4) * ffactor >= 256
        assert (28 + 4) * (ffactor - 1) < 256

    def test_given_ffactor_computes_bsize(self):
        bsize, ffactor = suggest_parameters(28, ffactor=8)
        assert ffactor == 8
        assert (28 + 4) * 8 >= bsize
        assert bsize >= 64
        assert bsize & (bsize - 1) == 0

    def test_default_matches_paper_sweet_spot(self):
        """The paper's dictionary pairs average ~12 bytes; bsize 256 needs
        ffactor 16; conversely the 256/8 sweet spot satisfies Eq 1 for
        ~28-byte pairs."""
        bsize, ffactor = suggest_parameters(28)
        assert (28 + 4) * ffactor >= bsize

    def test_both_given_passthrough(self):
        assert suggest_parameters(100, bsize=512, ffactor=3) == (512, 3)

    def test_bad_length(self):
        with pytest.raises(InvalidParameterError):
            suggest_parameters(0)


class TestStats:
    def test_counters_track_operations(self, mem_table):
        mem_table.put(b"a", b"1")
        mem_table.put(b"b", b"2")
        mem_table.get(b"a")
        mem_table.get(b"missing")
        mem_table.delete(b"a")
        s = mem_table.stats
        assert s.puts == 2
        assert s.gets == 2
        assert s.deletes == 1

    def test_split_counters(self):
        t = HashTable.create(None, ffactor=2, in_memory=True)
        for i in range(100):
            t.put(f"k{i}".encode(), b"v")
        assert t.stats.splits == (
            t.stats.controlled_splits + t.stats.uncontrolled_splits
        ) - t.stats.extra.get("expansion_stopped", 0)
        assert t.stats.splits == t.nbuckets - 1
        t.close()

    def test_nkeys_and_len_agree(self, mem_table):
        for i in range(20):
            mem_table.put(f"k{i}".encode(), b"v")
        assert len(mem_table) == mem_table.nkeys == 20
