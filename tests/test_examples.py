"""Every example script must run clean (they are executable documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
