"""Tests for the synthetic workload generators."""

import pytest

from repro.workloads import (
    DICTIONARY_SIZE,
    average_pair_length,
    dictionary_pairs,
    dictionary_words,
    passwd_accounts,
    passwd_pairs,
    uniform_pairs,
    zipf_pairs,
)


class TestDictionary:
    def test_paper_size(self):
        assert DICTIONARY_SIZE == 24474

    def test_words_unique_and_deterministic(self):
        w1 = dictionary_words(3000)
        w2 = dictionary_words(3000)
        assert w1 == w2
        assert len(set(w1)) == 3000

    def test_words_look_like_words(self):
        for w in dictionary_words(500):
            assert w.isascii()
            assert w.islower() or any(c.isdigit() for c in w.decode())
            assert 2 <= len(w) <= 30

    def test_realistic_length_distribution(self):
        words = dictionary_words(5000)
        mean = sum(len(w) for w in words) / len(words)
        assert 5 <= mean <= 12  # webster-era dictionaries average ~8

    def test_pairs_are_paper_format(self):
        """data value = ASCII integer 1..n inclusive."""
        pairs = list(dictionary_pairs(100))
        assert len(pairs) == 100
        assert pairs[0][1] == b"1"
        assert pairs[99][1] == b"100"

    def test_different_seed_different_words(self):
        assert dictionary_words(100, seed=1) != dictionary_words(100, seed=2)

    def test_zero_n(self):
        assert dictionary_words(0) == []
        with pytest.raises(ValueError):
            dictionary_words(-1)


class TestPasswd:
    def test_default_scale_matches_paper(self):
        """~300 accounts, 2 records each."""
        pairs = list(passwd_pairs())
        assert len(pairs) == 600

    def test_accounts_deterministic(self):
        assert passwd_accounts() == passwd_accounts()

    def test_entry_format(self):
        for name, uid, entry in passwd_accounts(50):
            fields = entry.split(":")
            assert len(fields) == 7
            assert fields[0] == name
            assert int(fields[2]) == uid

    def test_two_records_per_account(self):
        accounts = passwd_accounts(10)
        pairs = list(passwd_pairs(10))
        assert len(pairs) == 20
        name_key, rest = pairs[0]
        uid_key, full = pairs[1]
        assert name_key == accounts[0][0].encode()
        assert full.startswith(name_key + b":")
        assert rest == full[len(name_key) + 1 :]

    def test_keys_unique(self):
        pairs = list(passwd_pairs())
        keys = [k for k, _v in pairs]
        assert len(set(keys)) == len(keys)


class TestGenerators:
    def test_uniform_pairs_unique_keys(self):
        pairs = list(uniform_pairs(500, key_len=16, value_len=8))
        assert len({k for k, _ in pairs}) == 500
        for k, v in pairs:
            assert len(k) == 16
            assert len(v) == 8

    def test_uniform_needs_room_for_uniqueness(self):
        with pytest.raises(ValueError):
            list(uniform_pairs(10, key_len=4))

    def test_zipf_skews_access(self):
        ops = list(zipf_pairs(100, 2000, alpha=1.2, seed=3))
        assert len(ops) == 2000
        from collections import Counter

        counts = Counter(k for k, _v in ops)
        top = counts.most_common(10)
        # top-10 keys take a large share under zipf
        assert sum(c for _k, c in top) > 2000 * 0.3

    def test_average_pair_length(self):
        assert average_pair_length([(b"ab", b"cd"), (b"", b"abcdef")]) == 5.0
        with pytest.raises(ValueError):
            average_pair_length([])

    def test_dictionary_average_feeds_equation1(self):
        """Sanity link between workload and Eq 1 helper."""
        from repro.core.table import suggest_parameters

        avg = average_pair_length(dictionary_pairs(2000))
        bsize, ffactor = suggest_parameters(int(avg), bsize=256)
        assert (int(avg) + 4) * ffactor >= 256
