"""Cross-module integration tests: realistic end-to-end scenarios."""

import os
import random

import pytest

import repro
from repro.baselines import DynaHash, Gdbm, Hsearch, Ndbm, Sdbm
from repro.core.compat.ndbm import dbm_open
from repro.core.table import HashTable
from repro.workloads import dictionary_pairs, passwd_pairs, zipf_pairs


class TestDictionaryWorkload:
    """The paper's main dataset end-to-end (scaled)."""

    N = 3000

    def test_full_create_read_verify_cycle_on_disk(self, tmp_path):
        pairs = list(dictionary_pairs(self.N))
        path = tmp_path / "dict.db"
        with HashTable.create(path, bsize=1024, ffactor=32,
                              nelem=self.N, cachesize=1 << 20) as t:
            for k, v in pairs:
                t.put(k, v)
        with HashTable.open_file(path) as t:
            assert len(t) == self.N
            for k, v in pairs:
                assert t.get(k) == v
            assert sorted(t.keys()) == sorted(k for k, _v in pairs)
            t.check_invariants()

    def test_paper_sweet_spot_parameters(self):
        """bsize=256/ffactor=8 (the paper's tradeoff winner) handles the
        dictionary in memory."""
        pairs = list(dictionary_pairs(self.N))
        t = HashTable.create(None, bsize=256, ffactor=8, cachesize=1 << 20,
                             in_memory=True)
        for k, v in pairs:
            t.put(k, v)
        for k, v in pairs:
            assert t.get(k) == v
        t.check_invariants()
        t.close()

    def test_same_data_all_systems_agree(self, tmp_path):
        """Every system in the repository stores and returns the same
        dictionary subset."""
        pairs = list(dictionary_pairs(400))
        stores = []
        t = HashTable.create(None, in_memory=True)
        stores.append(("hash", t.put, t.get))
        nd = Ndbm(tmp_path / "nd", "n")
        stores.append(("ndbm", nd.store, nd.fetch))
        sd = Sdbm(tmp_path / "sd", "n")
        stores.append(("sdbm", sd.store, sd.fetch))
        gd = Gdbm(tmp_path / "gd.db", "n")
        stores.append(("gdbm", gd.store, gd.fetch))
        hs = Hsearch(1000)
        stores.append(("hsearch", hs.enter, hs.find))
        dy = DynaHash()
        stores.append(("dynahash", dy.put, dy.get))
        for _name, put, _get in stores:
            for k, v in pairs:
                put(k, v)
        for name, _put, get in stores:
            for k, v in pairs:
                assert get(k) == v, (name, k)
        t.close()
        nd.close()
        sd.close()
        gd.close()


class TestPasswdWorkload:
    """The paper's second dataset: passwd lookups by name and by uid."""

    def test_lookup_by_name_and_uid(self, tmp_path):
        db = repro.open(tmp_path / "passwd.db", "c", nelem=600)
        for k, v in passwd_pairs():
            db[k] = v
        accounts = dict()
        from repro.workloads import passwd_accounts

        for name, uid, entry in passwd_accounts():
            assert db[str(uid).encode()] == entry.encode()
            assert db[name.encode()] == entry[len(name) + 1 :].encode()
            accounts[name] = uid
        assert len(db) == 600
        db.close()


class TestMixedWorkload:
    def test_zipf_read_heavy_workload(self):
        """Skewed access with interleaved updates (the cache-friendly
        pattern Figure 7 exploits)."""
        t = HashTable.create(None, bsize=256, ffactor=8, cachesize=8192)
        model = {}
        for k, v in zipf_pairs(200, 3000, seed=11):
            if k in model:
                assert t.get(k) == model[k]
            new = v + k
            t.put(k, new)
            model[k] = new
        for k, v in model.items():
            assert t.get(k) == v
        t.close()

    def test_churn_grow_shrink_grow(self):
        rng = random.Random(5)
        t = HashTable.create(None, bsize=128, ffactor=4, in_memory=True)
        model = {}
        for round_ in range(3):
            # grow
            for i in range(400):
                k = f"r{round_}-k{i}".encode()
                v = os.urandom(rng.randint(0, 60))
                t.put(k, v)
                model[k] = v
            # shrink
            victims = rng.sample(sorted(model), k=len(model) // 2)
            for k in victims:
                assert t.delete(k)
                del model[k]
            assert len(t) == len(model)
        assert dict(t.items()) == model
        t.check_invariants()
        t.close()

    def test_interleaved_tables_do_not_interfere(self, tmp_path):
        """'Multiple hash tables may be accessed concurrently' (vs
        hsearch's single table)."""
        tables = [
            HashTable.create(tmp_path / f"t{i}.db", ffactor=4) for i in range(4)
        ]
        for i, t in enumerate(tables):
            for j in range(200):
                t.put(f"k{j}".encode(), f"table-{i}-{j}".encode())
        for i, t in enumerate(tables):
            for j in range(200):
                assert t.get(f"k{j}".encode()) == f"table-{i}-{j}".encode()
            t.close()


class TestCompatInterop:
    def test_ndbm_compat_file_is_native_file(self, tmp_path):
        """A database made through the ndbm compat layer opens natively."""
        with dbm_open(tmp_path / "x.db", "c") as db:
            db.store(b"k", b"v")
        with HashTable.open_file(tmp_path / "x.db") as t:
            assert t.get(b"k") == b"v"

    def test_native_file_opens_through_compat(self, tmp_path):
        with HashTable.create(tmp_path / "y.db") as t:
            t.put(b"k", b"v")
        with dbm_open(tmp_path / "y.db", "w") as db:
            assert db.fetch(b"k") == b"v"


class TestEnhancedFunctionality:
    """The paper's two bullet lists of improvements, as executable claims."""

    def test_inserts_never_fail_on_collisions(self):
        """'Inserts never fail because too many keys hash to the same
        value' -- constant hash function, still works."""
        t = HashTable.create(
            None, bsize=128, ffactor=4, in_memory=True, hashfn=lambda k: 7
        )
        for i in range(300):
            t.put(f"key-{i}".encode(), b"v" * 10)
        assert len(t) == 300
        for i in range(300):
            assert t.get(f"key-{i}".encode()) == b"v" * 10
        t.close()

    def test_inserts_never_fail_on_size(self):
        t = HashTable.create(None, bsize=64, in_memory=True)
        t.put(b"K" * 10_000, b"V" * 100_000)
        assert t.get(b"K" * 10_000) == b"V" * 100_000
        t.close()

    def test_user_specified_hash_at_runtime(self):
        t = HashTable.create(None, in_memory=True, hashfn="fnv1a")
        t.put(b"k", b"v")
        assert t.get(b"k") == b"v"
        t.close()

    def test_tables_stored_and_accessed_on_disk(self, tmp_path):
        """The hsearch shortcoming fixed: tables persist."""
        p = tmp_path / "persist.db"
        with HashTable.create(p) as t:
            t.put(b"k", b"v")
        assert p.exists()
        with HashTable.open_file(p, readonly=True) as t:
            assert t.get(b"k") == b"v"
