"""Tests for the System V hsearch baseline and its compile-time options."""

import pytest

from repro.baselines.hsearch.hsearch import (
    ENTER,
    FIND,
    Hsearch,
    TableFullError,
    _next_prime,
)


class TestNextPrime:
    def test_known_primes(self):
        assert _next_prime(2) == 2
        assert _next_prime(3) == 3
        assert _next_prime(4) == 5
        assert _next_prime(100) == 101
        assert _next_prime(1024) == 1031

    def test_lower_bound(self):
        assert _next_prime(0) == 2
        assert _next_prime(1) == 2


VARIANTS = [
    dict(),
    dict(variant="div"),
    dict(brent=True),
    dict(variant="div", brent=True),
    dict(variant="chained"),
    dict(variant="chained", order="up"),
    dict(variant="chained", order="down"),
]


@pytest.mark.parametrize("kwargs", VARIANTS, ids=lambda d: str(d))
class TestAllVariants:
    def test_enter_find(self, kwargs):
        t = Hsearch(100, **kwargs)
        t.enter(b"k", b"v")
        assert t.find(b"k") == b"v"
        assert t.find(b"missing") is None
        assert b"k" in t
        assert len(t) == 1

    def test_enter_existing_keeps_first(self, kwargs):
        """System V semantics: ENTER of an existing key returns the stored
        data, it does not replace."""
        t = Hsearch(100, **kwargs)
        t.enter(b"k", b"first")
        assert t.enter(b"k", b"second") == b"first"
        assert t.find(b"k") == b"first"

    def test_hundreds_of_keys(self, kwargs):
        t = Hsearch(1000, **kwargs)
        for i in range(600):
            t.enter(f"key-{i}".encode(), f"val-{i}".encode())
        for i in range(600):
            assert t.find(f"key-{i}".encode()) == f"val-{i}".encode()

    def test_hsearch_call_interface(self, kwargs):
        t = Hsearch(10, **kwargs)
        assert t.hsearch(b"k", b"v", ENTER) == b"v"
        assert t.hsearch(b"k", None, FIND) == b"v"
        with pytest.raises(ValueError):
            t.hsearch(b"k", None, ENTER)
        with pytest.raises(ValueError):
            t.hsearch(b"k", b"v", 99)


class TestFixedSizeShortcoming:
    def test_open_addressing_table_fills(self):
        """The historical failure the paper calls out: 'an insertion fails
        with a table full condition.'"""
        t = Hsearch(10, variant="div")
        with pytest.raises(TableFullError):
            for i in range(200):
                t.enter(f"key-{i}".encode(), b"v")

    def test_default_variant_fills_too(self):
        t = Hsearch(5)
        with pytest.raises(TableFullError):
            for i in range(100):
                t.enter(f"key-{i}".encode(), b"v")

    def test_chained_variant_never_fills(self):
        t = Hsearch(5, variant="chained")
        for i in range(100):
            t.enter(f"key-{i}".encode(), b"v")
        assert len(t) == 100


class TestBrent:
    def test_brent_shortens_probe_chains(self):
        """Brent's rearrangement trades insertion work for shorter
        retrieval chains on a loaded table."""
        keys = [f"key-{i:04d}".encode() for i in range(700)]
        plain = Hsearch(1000)
        brent = Hsearch(1000, brent=True)
        for t in (plain, brent):
            for k in keys:
                t.enter(k, b"v")
        plain.probes = brent.probes = 0
        for k in keys:
            plain.find(k)
            brent.find(k)
        assert brent.probes <= plain.probes

    def test_brent_preserves_correctness(self):
        t = Hsearch(500, brent=True)
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(350)}
        for k, v in data.items():
            t.enter(k, v)
        for k, v in data.items():
            assert t.find(k) == v


class TestChainedOrdering:
    def test_sortup_keeps_chains_ascending(self):
        t = Hsearch(3, variant="chained", order="up")
        for k in (b"zeta", b"alpha", b"mid"):
            t.enter(k, b"v")
        for chain in t._chains:
            keys = [k for k, _ in chain]
            assert keys == sorted(keys)

    def test_sortdown_keeps_chains_descending(self):
        t = Hsearch(3, variant="chained", order="down")
        for k in (b"alpha", b"zeta", b"mid"):
            t.enter(k, b"v")
        for chain in t._chains:
            keys = [k for k, _ in chain]
            assert keys == sorted(keys, reverse=True)

    def test_default_prepends(self):
        t = Hsearch(1, variant="chained")  # size rounds to 3; force clash
        t._chains = [[]]  # single bucket
        t.size = 1
        t.enter(b"first", b"1")
        t.enter(b"second", b"2")
        assert t._chains[0][0][0] == b"second"


class TestUserHash:
    def test_uscr_hash_used(self):
        calls = []

        def user_hash(key: bytes) -> int:
            calls.append(key)
            return sum(key)

        t = Hsearch(100, hashfn=user_hash)
        t.enter(b"k", b"v")
        assert t.find(b"k") == b"v"
        assert calls


class TestValidation:
    def test_bad_variant(self):
        with pytest.raises(ValueError):
            Hsearch(10, variant="nope")

    def test_brent_with_chained_rejected(self):
        with pytest.raises(ValueError):
            Hsearch(10, variant="chained", brent=True)

    def test_order_without_chained_rejected(self):
        with pytest.raises(ValueError):
            Hsearch(10, order="up")

    def test_bad_order(self):
        with pytest.raises(ValueError):
            Hsearch(10, variant="chained", order="sideways")

    def test_bad_nelem(self):
        with pytest.raises(ValueError):
            Hsearch(0)

    def test_hdestroy(self):
        t = Hsearch(10)
        t.enter(b"k", b"v")
        t.hdestroy()
        assert len(t) == 0
