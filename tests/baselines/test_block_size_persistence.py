"""The block size is a property of an existing dbm/sdbm database.

In the C libraries the block size was a compile-time constant, so a file
could never be opened with the wrong one.  Our runtime parameter is
recorded in the .dir header and wins on reopen -- these tests pin that
contract (a regression here silently corrupts reads).
"""

from repro.baselines.dbm import DbmFile
from repro.baselines.sdbm import Sdbm


class TestDbmBlockSize:
    def test_nondefault_block_size_survives_reopen(self, tmp_path):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(200)}
        with DbmFile(tmp_path / "db", "n", block_size=256) as db:
            for k, v in data.items():
                db.store(k, v)
        # reopen WITHOUT specifying the block size
        with DbmFile(tmp_path / "db", "w") as db:
            assert db.block_size == 256
            for k, v in data.items():
                assert db.fetch(k) == v

    def test_conflicting_block_size_is_ignored_on_open(self, tmp_path):
        with DbmFile(tmp_path / "db", "n", block_size=256) as db:
            db.store(b"k", b"v")
        with DbmFile(tmp_path / "db", "w", block_size=4096) as db:
            assert db.block_size == 256  # stored value wins
            assert db.fetch(b"k") == b"v"

    def test_n_flag_resets_block_size(self, tmp_path):
        with DbmFile(tmp_path / "db", "n", block_size=256):
            pass
        with DbmFile(tmp_path / "db", "n", block_size=1024) as db:
            assert db.block_size == 1024


class TestSdbmBlockSize:
    def test_nondefault_block_size_survives_reopen(self, tmp_path):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(200)}
        with Sdbm(tmp_path / "db", "n", block_size=512) as db:
            for k, v in data.items():
                db.store(k, v)
        with Sdbm(tmp_path / "db", "w") as db:
            assert db.block_size == 512
            for k, v in data.items():
                assert db.fetch(k) == v

    def test_readonly_open_uses_stored_block_size(self, tmp_path):
        with Sdbm(tmp_path / "db", "n", block_size=256) as db:
            db.store(b"k", b"v")
        with Sdbm(tmp_path / "db", "r") as db:
            assert db.block_size == 256
            assert db.fetch(b"k") == b"v"
