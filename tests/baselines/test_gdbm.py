"""Tests for the gdbm baseline (extendible hashing)."""

import os

import pytest

from repro.baselines.gdbm import Gdbm, GdbmError
from repro.baselines.gdbm.allocator import AVAIL_MAX, ExtentAllocator


class TestExtentAllocator:
    def test_alloc_extends_watermark(self):
        a = ExtentAllocator(100)
        assert a.alloc(10) == 100
        assert a.alloc(5) == 110
        assert a.watermark == 115

    def test_free_then_first_fit_reuse(self):
        a = ExtentAllocator(0)
        off = a.alloc(50)
        a.free(off, 50)
        assert a.alloc(30) == off  # first fit
        # remainder stays available
        assert a.alloc(20) == off + 30

    def test_exact_fit_removes_entry(self):
        a = ExtentAllocator(0)
        off = a.alloc(10)
        a.free(off, 10)
        assert a.alloc(10) == off
        assert a.avail == []

    def test_too_small_extents_skipped(self):
        a = ExtentAllocator(0)
        off = a.alloc(10)
        a.free(off, 10)
        big = a.alloc(20)
        assert big != off

    def test_overflowing_free_list_leaks(self):
        a = ExtentAllocator(0)
        for i in range(AVAIL_MAX + 10):
            a.free(i * 100, 10)
        assert len(a.avail) == AVAIL_MAX
        assert a.leaked_bytes == 100

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ExtentAllocator(-1)
        a = ExtentAllocator(0)
        with pytest.raises(ValueError):
            a.alloc(0)
        a.free(0, 0)  # zero-size free is a no-op


class TestGdbmBasics:
    def test_store_fetch_delete(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n") as db:
            db.store(b"k", b"v")
            assert db.fetch(b"k") == b"v"
            assert db.fetch(b"nope") is None
            assert db.delete(b"k")
            assert not db.delete(b"k")

    def test_replace(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n") as db:
            db.store(b"k", b"short")
            db.store(b"k", b"a much longer replacement value")
            assert db.fetch(b"k") == b"a much longer replacement value"
            assert db.store(b"k", b"z", replace=False) is False

    def test_arbitrary_length_data(self, tmp_path):
        """gdbm's improvement over dbm: no page-size limit on records."""
        with Gdbm(tmp_path / "g.db", "n", block_size=256) as db:
            huge = bytes(i % 251 for i in range(100_000))
            db.store(b"huge", huge)
            assert db.fetch(b"huge") == huge

    def test_directory_doubles_under_load(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n", block_size=256) as db:
            for i in range(500):
                db.store(f"key-{i:04d}".encode(), f"value-{i}".encode())
            assert db.dir_depth > 1
            assert len(db.directory) == 1 << db.dir_depth
            for i in range(500):
                assert db.fetch(f"key-{i:04d}".encode()) == f"value-{i}".encode()

    def test_directory_entries_share_buckets(self, tmp_path):
        """Multiple directory entries may point at one bucket (the paper's
        crucial observation about L1)."""
        with Gdbm(tmp_path / "g.db", "n", block_size=512) as db:
            for i in range(200):
                db.store(f"key-{i:04d}".encode(), b"v")
            distinct = len(set(db.directory))
            assert distinct < len(db.directory)

    def test_persistence(self, tmp_path):
        data = {f"key-{i}".encode(): f"val-{i}".encode() * 2 for i in range(400)}
        with Gdbm(tmp_path / "g.db", "n") as db:
            for k, v in data.items():
                db.store(k, v)
        with Gdbm(tmp_path / "g.db", "w") as db:
            for k, v in data.items():
                assert db.fetch(k) == v
            assert dict(db.items()) == data

    def test_single_non_sparse_file(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n") as db:
            for i in range(100):
                db.store(f"k{i}".encode(), b"v" * 50)
        size = os.path.getsize(tmp_path / "g.db")
        # non-sparse: allocated size == file size (no holes); just assert
        # the file exists alone and is modest
        assert size > 0
        assert not (tmp_path / "g.db.pag").exists()

    def test_deleted_space_reused(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n") as db:
            for i in range(100):
                db.store(f"key-{i}".encode(), b"x" * 100)
            size_before = os.path.getsize(tmp_path / "g.db")
            for i in range(100):
                db.delete(f"key-{i}".encode())
            for i in range(100):
                db.store(f"new-{i}".encode(), b"y" * 100)
            size_after = os.path.getsize(tmp_path / "g.db")
            # reuse keeps growth well under doubling
            assert size_after < size_before * 1.5

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.db"
        p.write_bytes(b"\0" * 4096)
        with pytest.raises(GdbmError):
            Gdbm(p, "w")

    def test_readonly(self, tmp_path):
        Gdbm(tmp_path / "g.db", "n").close()
        db = Gdbm(tmp_path / "g.db", "r")
        with pytest.raises(ValueError):
            db.store(b"k", b"v")
        db.close()

    def test_firstkey_nextkey(self, tmp_path):
        with Gdbm(tmp_path / "g.db", "n") as db:
            for i in range(60):
                db.store(f"k{i}".encode(), b"v")
            seen = set()
            k = db.firstkey()
            while k is not None:
                seen.add(k)
                k = db.nextkey()
            assert len(seen) == 60

    def test_same_hash_keys_distinguished(self, tmp_path):
        """Full keys are compared (not just the 32-bit hash)."""
        fixed = lambda key: 0x42424242  # noqa: E731
        with Gdbm(tmp_path / "g.db", "n", hashfn=fixed) as db:
            db.store(b"one", b"1")
            db.store(b"two", b"2")
            assert db.fetch(b"one") == b"1"
            assert db.fetch(b"two") == b"2"

    def test_full_bucket_of_identical_hashes_fails(self, tmp_path):
        """Extendible hashing cannot split a bucket of identical hashes --
        the directory depth exhausts (capped low here to keep the test
        cheap; the failure class is the same at the default cap)."""
        fixed = lambda key: 0x42424242  # noqa: E731
        with Gdbm(
            tmp_path / "g.db", "n", block_size=256, hashfn=fixed, max_dir_depth=8
        ) as db:
            with pytest.raises(GdbmError, match="cannot split"):
                for i in range(100):
                    db.store(f"c{i}".encode(), b"v")

    def test_bad_max_dir_depth(self, tmp_path):
        with pytest.raises(ValueError):
            Gdbm(tmp_path / "g.db", "n", max_dir_depth=0)
