"""Tests for the sdbm baseline (radix-trie dynamic hashing)."""

import pytest

from repro.baselines.sdbm import Sdbm, SdbmError


class TestBasics:
    def test_store_fetch_delete(self, tmp_path):
        with Sdbm(tmp_path / "db", "n") as db:
            db.store(b"k", b"v")
            assert db.fetch(b"k") == b"v"
            assert db.fetch(b"missing") is None
            assert db.delete(b"k")
            assert db.fetch(b"k") is None

    def test_replace_and_insert(self, tmp_path):
        with Sdbm(tmp_path / "db", "n") as db:
            db.store(b"k", b"1")
            db.store(b"k", b"2")
            assert db.fetch(b"k") == b"2"
            assert db.store(b"k", b"3", replace=False) is False
            assert db.fetch(b"k") == b"2"

    def test_many_keys_split_trie(self, tmp_path):
        data = {f"key-{i:04d}".encode(): f"value-{i}".encode() for i in range(500)}
        with Sdbm(tmp_path / "db", "n", block_size=256) as db:
            for k, v in data.items():
                db.store(k, v)
            for k, v in data.items():
                assert db.fetch(k) == v
            assert db.trie.count_set() > 0
            assert dict(db.items()) == data

    def test_persistence(self, tmp_path):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(300)}
        with Sdbm(tmp_path / "db", "n", block_size=256) as db:
            for k, v in data.items():
                db.store(k, v)
        with Sdbm(tmp_path / "db", "w") as db:
            for k, v in data.items():
                assert db.fetch(k) == v
            assert dict(db.items()) == data

    def test_oversized_pair_fails(self, tmp_path):
        with Sdbm(tmp_path / "db", "n", block_size=128) as db:
            with pytest.raises(SdbmError, match="exceed"):
                db.store(b"key", b"x" * 200)

    def test_unsplittable_collisions_fail(self, tmp_path):
        same_hash = lambda key: 0xABCDEF01  # noqa: E731
        with Sdbm(tmp_path / "db", "n", block_size=128, hashfn=same_hash) as db:
            with pytest.raises(SdbmError, match="cannot store"):
                for i in range(60):
                    db.store(f"c{i}".encode(), b"x" * 20)

    def test_readonly(self, tmp_path):
        Sdbm(tmp_path / "db", "n").close()
        db = Sdbm(tmp_path / "db", "r")
        with pytest.raises(ValueError):
            db.store(b"k", b"v")
        db.close()

    def test_firstkey_nextkey(self, tmp_path):
        with Sdbm(tmp_path / "db", "n") as db:
            for i in range(40):
                db.store(f"k{i}".encode(), b"v")
            seen = set()
            k = db.firstkey()
            while k is not None:
                seen.add(k)
                k = db.nextkey()
            assert len(seen) == 40


class TestTrieAccess:
    def test_access_consumes_bits_in_order(self, tmp_path):
        """After a split at the root, bucket selection uses hash bit 0."""
        with Sdbm(tmp_path / "db", "n", block_size=128) as db:
            for i in range(60):
                db.store(f"key-{i:02d}".encode(), b"x" * 10)
            # root must have split
            assert db.trie.is_set(0)
            bucket, mask, nbits, _tbit = db._access(0b0)
            assert nbits >= 1
            assert bucket == 0 & mask

    def test_incompatible_with_dbm_at_database_level(self, tmp_path):
        """Same interface, different hash + bitmap layout: an sdbm file is
        not a dbm file (the paper notes the incompatibility)."""
        from repro.baselines.dbm import DbmFile

        with Sdbm(tmp_path / "db", "n", block_size=128) as db:
            for i in range(80):
                db.store(f"key-{i:02d}".encode(), b"x" * 10)
        with DbmFile(tmp_path / "db", "w", block_size=128) as db:
            misses = sum(
                1 for i in range(80) if db.fetch(f"key-{i:02d}".encode()) is None
            )
            assert misses > 0
