"""Tests for the dbm/ndbm baseline (Thompson's algorithm)."""

import pytest

from repro.baselines.dbm import DBM_INSERT, DBM_REPLACE, DbmError, DbmFile, Ndbm
from repro.baselines.dbm import ndbm as dbm_module
from repro.baselines.dbm.bitmap import DirBitmap


class TestDirBitmap:
    def test_set_and_query(self):
        bm = DirBitmap()
        assert not bm.is_set(0)
        bm.set(0)
        bm.set(100)
        assert bm.is_set(0)
        assert bm.is_set(100)
        assert not bm.is_set(99)

    def test_clear(self):
        bm = DirBitmap()
        bm.set(10)
        bm.clear(10)
        assert not bm.is_set(10)
        bm.clear(1000)  # beyond allocated: no-op

    def test_count(self):
        bm = DirBitmap()
        for b in (0, 7, 8, 63):
            bm.set(b)
        assert bm.count_set() == 4

    def test_persistence(self, tmp_path):
        bm = DirBitmap()
        bm.set(5)
        bm.set(500)
        bm.maxbuck = 42
        bm.save(tmp_path / "x.dir")
        loaded = DirBitmap.load(tmp_path / "x.dir")
        assert loaded.is_set(5)
        assert loaded.is_set(500)
        assert not loaded.is_set(6)
        assert loaded.maxbuck == 42

    def test_load_empty_file(self, tmp_path):
        (tmp_path / "e.dir").write_bytes(b"")
        bm = DirBitmap.load(tmp_path / "e.dir")
        assert bm.maxbuck == 0

    def test_load_bad_magic(self, tmp_path):
        (tmp_path / "bad.dir").write_bytes(b"X" * 64)
        with pytest.raises(ValueError):
            DirBitmap.load(tmp_path / "bad.dir")


class TestDbmFile:
    def test_store_fetch(self, tmp_path):
        with DbmFile(tmp_path / "db", "n") as db:
            db.store(b"k", b"v")
            assert db.fetch(b"k") == b"v"
            assert db.fetch(b"missing") is None

    def test_replace_semantics(self, tmp_path):
        with DbmFile(tmp_path / "db", "n") as db:
            db.store(b"k", b"old")
            db.store(b"k", b"new")
            assert db.fetch(b"k") == b"new"
            assert db.store(b"k", b"x", replace=False) is False
            assert db.fetch(b"k") == b"new"

    def test_delete(self, tmp_path):
        with DbmFile(tmp_path / "db", "n") as db:
            db.store(b"k", b"v")
            assert db.delete(b"k")
            assert db.fetch(b"k") is None
            assert not db.delete(b"k")

    def test_splits_on_page_overflow(self, tmp_path):
        with DbmFile(tmp_path / "db", "n", block_size=128) as db:
            for i in range(100):
                db.store(f"key-{i:03d}".encode(), b"x" * 10)
            for i in range(100):
                assert db.fetch(f"key-{i:03d}".encode()) == b"x" * 10
            assert db.bitmap.count_set() > 0  # splits happened

    def test_oversized_pair_fails(self, tmp_path):
        """dbm's historical shortcoming, reproduced faithfully."""
        with DbmFile(tmp_path / "db", "n", block_size=256) as db:
            with pytest.raises(DbmError, match="exceed"):
                db.store(b"key", b"x" * 300)

    def test_unsplittable_collisions_fail(self, tmp_path):
        """'if two or more keys produce the same hash value and their total
        size exceeds the page size, the table cannot store all the
        colliding keys.'"""
        same_hash = lambda key: 0x12345678  # noqa: E731
        with DbmFile(tmp_path / "db", "n", block_size=128, hashfn=same_hash) as db:
            with pytest.raises(DbmError, match="cannot"):
                for i in range(50):
                    db.store(f"collide-{i}".encode(), b"x" * 20)

    def test_persistence(self, tmp_path):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(200)}
        with DbmFile(tmp_path / "db", "n") as db:
            for k, v in data.items():
                db.store(k, v)
        with DbmFile(tmp_path / "db", "w") as db:
            for k, v in data.items():
                assert db.fetch(k) == v

    def test_items_scan_complete(self, tmp_path):
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(300)}
        with DbmFile(tmp_path / "db", "n", block_size=128) as db:
            for k, v in data.items():
                db.store(k, v)
            assert dict(db.items()) == data

    def test_single_block_cache_counts_io(self, tmp_path):
        """dbm re-reads the block on every bucket change -- the behaviour
        the paper's caching improves on."""
        with DbmFile(tmp_path / "db", "n", block_size=128) as db:
            for i in range(200):
                db.store(f"key-{i:03d}".encode(), b"x" * 8)
            reads_before = db.io_stats.page_reads
            for i in range(200):
                db.fetch(f"key-{i:03d}".encode())
            # most fetches hit a different bucket than the cached one
            assert db.io_stats.page_reads - reads_before > 100

    def test_readonly(self, tmp_path):
        DbmFile(tmp_path / "db", "n").close()
        db = DbmFile(tmp_path / "db", "r")
        with pytest.raises(ValueError):
            db.store(b"k", b"v")
        db.close()

    def test_sparse_pag_file(self, tmp_path):
        with DbmFile(tmp_path / "db", "n") as db:
            for i in range(500):
                db.store(f"key-{i}".encode(), b"v" * 100)
        # .pag addressed by hash bits: logical size >> used size
        assert (tmp_path / "db.pag").exists()
        assert (tmp_path / "db.dir").exists()


class TestNdbmInterface:
    def test_store_flags(self, tmp_path):
        with Ndbm(tmp_path / "db", "n") as db:
            assert db.store(b"k", b"v", DBM_INSERT) == 0
            assert db.store(b"k", b"w", DBM_INSERT) == 1
            assert db.store(b"k", b"w", DBM_REPLACE) == 0
            assert db.fetch(b"k") == b"w"
            assert db.delete(b"k") == 0
            assert db.delete(b"k") == -1

    def test_first_next_scan(self, tmp_path):
        with Ndbm(tmp_path / "db", "n") as db:
            for i in range(50):
                db.store(f"k{i}".encode(), b"v")
            seen = set()
            k = db.firstkey()
            while k is not None:
                seen.add(k)
                k = db.nextkey()
            assert len(seen) == 50

    def test_multiple_open_databases(self, tmp_path):
        a = Ndbm(tmp_path / "a", "n")
        b = Ndbm(tmp_path / "b", "n")
        a.store(b"k", b"A")
        b.store(b"k", b"B")
        assert a.fetch(b"k") == b"A"
        assert b.fetch(b"k") == b"B"
        a.close()
        b.close()


class TestV7GlobalInterface:
    def teardown_method(self):
        dbm_module.dbmclose()

    def test_single_global_database(self, tmp_path):
        dbm_module.dbminit(tmp_path / "v7")
        dbm_module.store(b"k", b"v")
        assert dbm_module.fetch(b"k") == b"v"
        with pytest.raises(RuntimeError, match="already open"):
            dbm_module.dbminit(tmp_path / "other")

    def test_use_before_init(self):
        with pytest.raises(RuntimeError):
            dbm_module.fetch(b"k")

    def test_scan(self, tmp_path):
        dbm_module.dbminit(tmp_path / "v7")
        dbm_module.store(b"a", b"1")
        dbm_module.store(b"b", b"2")
        seen = set()
        k = dbm_module.firstkey()
        while k is not None:
            seen.add(k)
            k = dbm_module.nextkey()
        assert seen == {b"a", b"b"}
