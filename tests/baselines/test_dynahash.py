"""Tests for the dynahash baseline (in-memory linear hashing)."""

import pytest

from repro.baselines.dynahash import DynaHash


class TestBasics:
    def test_put_get_delete(self):
        d = DynaHash()
        assert d.put(b"k", b"v")
        assert d.get(b"k") == b"v"
        assert d.get(b"nope") is None
        assert d.get(b"nope", b"dflt") == b"dflt"
        assert d.delete(b"k")
        assert not d.delete(b"k")
        assert len(d) == 0

    def test_replace(self):
        d = DynaHash()
        d.put(b"k", b"1")
        d.put(b"k", b"2")
        assert d.get(b"k") == b"2"
        assert len(d) == 1
        assert d.put(b"k", b"3", replace=False) is False
        assert d.get(b"k") == b"2"

    def test_contains(self):
        d = DynaHash()
        d.put(b"yes", b"1")
        assert b"yes" in d
        assert b"no" not in d

    def test_items(self):
        d = DynaHash()
        data = {f"k{i}".encode(): f"v{i}".encode() for i in range(100)}
        for k, v in data.items():
            d.put(k, v)
        assert dict(d.items()) == data
        assert sorted(d.keys()) == sorted(data)


class TestGrowth:
    def test_table_grows_in_generations(self):
        """'a hash table begins as a single bucket and grows in
        generations, where a generation corresponds to a doubling.'"""
        d = DynaHash(ffactor=2)
        assert d.max_bucket == 0
        for i in range(100):
            d.put(f"key-{i}".encode(), b"v")
        assert d.max_bucket + 1 >= 100 // 2
        d.check_invariants()

    def test_controlled_splitting_respects_ffactor(self):
        d = DynaHash(ffactor=5)
        for i in range(1000):
            d.put(f"key-{i}".encode(), b"v")
        assert d.nkeys / (d.max_bucket + 1) <= 5 + 1e-9
        d.check_invariants()

    def test_nelem_presizing(self):
        """'The initial number of buckets is set to nelem rounded to the
        next higher power of two.'"""
        d = DynaHash(nelem=100, ffactor=5)
        assert d.max_bucket + 1 == 32  # ceil(100/5)=20 -> 32
        assert d.splits == 0
        for i in range(100):
            d.put(f"k{i}".encode(), b"v")
        # pre-sized: filling up to nelem causes few or no splits
        assert d.splits <= 1

    def test_grows_past_nelem(self):
        d = DynaHash(nelem=10)
        for i in range(500):
            d.put(f"k{i}".encode(), b"v")
        assert len(d) == 500
        d.check_invariants()

    def test_splits_are_linear(self):
        d = DynaHash(ffactor=1)
        sizes = []
        for i in range(64):
            d.put(f"k{i}".encode(), b"v")
            sizes.append(d.max_bucket + 1)
        # strictly non-decreasing, steps of one
        for a, b in zip(sizes, sizes[1:]):
            assert b in (a, a + 1)

    def test_user_hash_function(self):
        d = DynaHash(hashfn=lambda k: sum(k))
        d.put(b"ab", b"1")
        assert d.get(b"ab") == b"1"


class TestValidation:
    def test_bad_nelem(self):
        with pytest.raises(ValueError):
            DynaHash(nelem=0)

    def test_bad_ffactor(self):
        with pytest.raises(ValueError):
            DynaHash(ffactor=0)


class TestParallelWithCore:
    def test_same_mask_schedule_as_new_package(self):
        """dynahash and the new package share split order and masks; their
        bucket populations should agree when fed identical hashes."""
        from repro.core.table import HashTable

        fn = lambda k: int.from_bytes(k[:4].ljust(4, b"\0"), "little")  # noqa: E731
        d = DynaHash(ffactor=8, hashfn=fn)
        t = HashTable.create(None, ffactor=8, bsize=8192, in_memory=True, hashfn=fn)
        for i in range(400):
            key = f"key-{i:04d}".encode()
            d.put(key, b"v")
            t.put(key, b"v")
        assert d.max_bucket == t.header.max_bucket
        assert d.low_mask == t.header.low_mask
        assert d.high_mask == t.header.high_mask
        t.close()
