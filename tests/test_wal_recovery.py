"""WAL crash-recovery sweep: kill the process at every I/O operation.

The moral contract of ``durability='wal'`` is sharper than the plain
crash sweep's (``test_crash_recovery.py``): it is not enough that the
file reopens consistently --

- every transaction whose ``commit()`` RETURNED before the crash must be
  fully visible after reopen (zero lost committed writes);
- every transaction that was aborted, or still open at the crash, must be
  fully invisible (zero visible aborted writes);
- a transaction whose commit was in flight may land either way, but only
  atomically.

A shared :class:`FaultClock` numbers I/O across BOTH files (table +
``.wal``), so sweeping ``fail_after`` over the calibrated op count hits
every write to either one, including the ones inside checkpoints.  The
sweep reopens with no fault wrapper (recovery runs normally) and checks
the contract key by key.
"""

from __future__ import annotations

import os
import shutil
import struct

import pytest

from repro.access.btree.btree import BTree
from repro.core.errors import HashError
from repro.core.table import HashTable
from repro.core.wal import FRAME_HDR_SIZE, WAL_HDR_SIZE, wal_path_for
from repro.storage.faulty import FaultClock, FaultyPager

#: reopening a post-crash file may fail, but only like this (typed,
#: detected) -- never by silently serving wrong bytes
CLEAN_ERRORS = (HashError, OSError, EOFError, ValueError, struct.error)

C1 = [(f"c1-{i:02d}".encode(), f"first-{i:02d}-".encode() + b"x" * 40) for i in range(10)]
AB = [(f"ab-{i:02d}".encode(), b"never-visible") for i in range(6)]
C2 = [(f"c2-{i:02d}".encode(), f"second-{i:02d}".encode()) for i in range(10)]
C3 = [(f"c3-{i:02d}".encode(), b"third" * 10) for i in range(6)]
DELETED = [k for k, _ in C1[:3]]
VALUES = dict(C1 + C2 + C3)


def _force_close(t) -> None:
    """Close a (possibly crashed) table without leaking descriptors: a
    post-crash ``close()`` raises at its checkpoint, so fall back to
    closing the raw files (``FaultyPager.close`` never faults)."""
    try:
        t.close()
    except Exception:
        for obj in (getattr(t, "_file", None), getattr(t, "_wal", None)):
            try:
                if obj is not None:
                    obj.close()
            except Exception:
                pass


def run_hash_workload(path, fail_after=None, mode="crash", progress=None):
    """The swept workload.  ``progress`` (caller-owned) records which
    stages completed before any injected crash; returns the op count."""
    if progress is None:
        progress = []
    clock = FaultClock()

    def wrap(f, _c=clock):
        return FaultyPager(f, fail_after=fail_after, mode=mode, clock=_c)

    t = HashTable.create(
        path, bsize=512, durability="wal",
        file_wrapper=wrap, wal_wrapper=wrap,
    )
    try:
        t.begin()
        for k, v in C1:
            t.put(k, v)
        t.commit()
        progress.append("c1")
        t.begin()
        for k, v in AB:
            t.put(k, v)
        t.abort()
        progress.append("ab")
        t.checkpoint()
        progress.append("ckpt")
        t.begin()
        for k, v in C2:
            t.put(k, v)
        for k in DELETED:
            t.delete(k)
        t.commit()
        progress.append("c2")
        t.begin()
        for k, v in C3:
            t.put(k, v)
        t.commit()
        progress.append("c3")
    finally:
        _force_close(t)
    progress.append("closed")
    return clock.ops


def check_contract(path, progress):
    """Assert the durability contract against the reopened table."""
    try:
        t = HashTable.open_file(path)
    except CLEAN_ERRORS:
        # a typed refusal is acceptable only if nothing was ever
        # acknowledged committed (a crash during create/first commit)
        assert "c1" not in progress, (
            f"table refused to open after acknowledged commits {progress}"
        )
        return
    try:
        # committed batches whose commit() returned: fully visible
        if "c1" in progress:
            for k, v in C1:
                if k in DELETED and "c2" in progress:
                    assert t.get(k) is None, f"{k!r} deleted by committed c2"
                elif k in DELETED:
                    # c2 in flight: its delete landed atomically or not at all
                    assert t.get(k) in (None, v), (k, t.get(k))
                else:
                    got = t.get(k)
                    assert got == v, f"lost committed write {k!r}: {got!r}"
        if "c2" in progress:
            for k, v in C2:
                assert t.get(k) == v, f"lost committed write {k!r}"
        if "c3" in progress:
            for k, v in C3:
                assert t.get(k) == v, f"lost committed write {k!r}"
        # aborted writes: never visible, no matter where the crash hit
        for k, _v in AB:
            assert t.get(k) is None, f"aborted write {k!r} is visible"
        # in-flight batches (commit never returned): atomic -- all or none
        for batch, stage in ((C1, "c1"), (C2, "c2"), (C3, "c3")):
            if stage in progress:
                continue
            present = [k for k, _ in batch if t.get(k) is not None]
            assert len(present) in (0, len(batch)), (
                f"torn transaction {stage}: only {present} visible"
            )
            for k in present:
                assert t.get(k) == VALUES[k]
    finally:
        t.close()


def test_calibration_completes(tmp_path):
    progress: list[str] = []
    ops = run_hash_workload(tmp_path / "t.db", progress=progress)
    assert progress[-1] == "closed"
    assert ops > 30  # the sweep below has real coverage
    check_contract(tmp_path / "t.db", progress)


@pytest.mark.parametrize("mode", ["crash", "torn"])
def test_crash_sweep_loses_nothing_committed(tmp_path, mode):
    total_ops = run_hash_workload(tmp_path / "calib.db")
    swept = 0
    for n in range(total_ops):
        path = tmp_path / f"s{n}.db"
        progress: list[str] = []
        try:
            run_hash_workload(path, fail_after=n, mode=mode, progress=progress)
        except CLEAN_ERRORS:
            pass  # the injected kill (or its typed aftermath)
        check_contract(path, progress)
        os.unlink(path)
        wal = wal_path_for(path)
        if os.path.exists(wal):
            os.unlink(wal)
        swept += 1
    assert swept == total_ops


# -- targeted log-corruption cases ---------------------------------------------


def _committed_state(tmp_path, name):
    """A table with committed-but-uncheckpointed transactions, 'killed'
    without close; returns (path, walpath)."""
    path = tmp_path / name
    t = HashTable.create(path, bsize=512, durability="wal")
    t.begin()
    for k, v in C1:
        t.put(k, v)
    t.commit()
    t.begin()
    for k, v in C2:
        t.put(k, v)
    t.commit()
    del t  # kill -9
    return path, wal_path_for(path)


def test_torn_tail_replays_valid_prefix(tmp_path):
    path, wal = _committed_state(tmp_path, "torn.db")
    with open(wal, "ab") as fh:
        fh.write(b"\x13\x37" * 9)  # torn garbage past the last frame
    with HashTable.open_file(path) as t:
        for k, v in C1 + C2:
            assert t.get(k) == v
    # the clean close checkpointed: the garbage is gone with the log
    assert os.path.getsize(wal) <= WAL_HDR_SIZE + FRAME_HDR_SIZE


def test_bitflip_sweep_never_invents_data(tmp_path):
    """Flip one bit at (a sample of) every byte of the log, then recover.

    The per-frame CRC turns silent media corruption into a torn tail:
    replay keeps a prefix of the committed transactions and drops the
    rest.  It must never surface a wrong value, a torn transaction, or
    an aborted write -- and C2 visible implies C1 visible (replay is
    in log order).
    """
    path, wal = _committed_state(tmp_path, "pristine.db")
    size = os.path.getsize(wal)
    stride = max(1, size // 200)
    flipped = 0
    for off in range(0, size, stride):
        p = tmp_path / f"f{off}.db"
        shutil.copy(path, p)
        shutil.copy(wal, wal_path_for(p))
        with open(wal_path_for(p), "r+b") as fh:
            fh.seek(off)
            b = fh.read(1)
            fh.seek(off)
            fh.write(bytes([b[0] ^ 0x10]))
        flipped += 1
        try:
            t = HashTable.open_file(p)
        except CLEAN_ERRORS:
            continue  # e.g. a flipped WAL header: typed refusal is fine
        try:
            got1 = [t.get(k) for k, _ in C1]
            got2 = [t.get(k) for k, _ in C2]
            for (k, v), got in zip(C1 + C2, got1 + got2):
                assert got in (None, v), f"flip@{off}: garbage under {k!r}: {got!r}"
            for k, _v in AB:
                assert t.get(k) is None
            n1 = sum(g is not None for g in got1)
            n2 = sum(g is not None for g in got2)
            assert n1 in (0, len(C1)) and n2 in (0, len(C2)), (
                f"flip@{off}: torn transaction ({n1}/{len(C1)}, {n2}/{len(C2)})"
            )
            assert not (n2 and not n1), f"flip@{off}: replay skipped txn 1"
        finally:
            t.close()
        os.unlink(p)
        os.unlink(wal_path_for(p))
    assert flipped >= 100


# -- the btree side ------------------------------------------------------------


def run_btree_workload(path, fail_after=None, mode="crash", progress=None):
    if progress is None:
        progress = []
    clock = FaultClock()

    def wrap(f, _c=clock):
        return FaultyPager(f, fail_after=fail_after, mode=mode, clock=_c)

    t = BTree.create(
        path, bsize=512, durability="wal",
        file_wrapper=wrap, wal_wrapper=wrap,
    )
    try:
        t.begin()
        for k, v in C1:
            t.put(k, v)
        t.commit()
        progress.append("c1")
        t.begin()
        for k, v in AB:
            t.put(k, v)
        t.abort()
        progress.append("ab")
        t.begin()
        for k, v in C2:
            t.put(k, v)
        t.commit()
        progress.append("c2")
    finally:
        _force_close(t)
    progress.append("closed")
    return clock.ops


def test_btree_crash_sweep(tmp_path):
    total_ops = run_btree_workload(tmp_path / "calib.db")
    assert total_ops > 20
    for n in range(total_ops):
        path = tmp_path / f"b{n}.db"
        progress: list[str] = []
        try:
            run_btree_workload(path, fail_after=n, progress=progress)
        except CLEAN_ERRORS:
            pass
        try:
            t = BTree.open_file(path)
        except CLEAN_ERRORS:
            assert "c1" not in progress, (
                f"btree refused to open after acknowledged commits {progress}"
            )
            continue
        try:
            if "c1" in progress:
                for k, v in C1:
                    assert t.get(k) == v, f"lost committed {k!r}"
            if "c2" in progress:
                for k, v in C2:
                    assert t.get(k) == v, f"lost committed {k!r}"
            for k, _v in AB:
                assert t.get(k) is None, f"aborted {k!r} visible"
            t.check_invariants()
        finally:
            t.close()
        os.unlink(path)
        wal = wal_path_for(path)
        if os.path.exists(wal):
            os.unlink(wal)
