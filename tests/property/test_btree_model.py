"""Model-based property tests for the btree access method."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.access.btree import BTree

KEYS = st.binary(min_size=0, max_size=12)
VALUES = st.binary(min_size=0, max_size=60)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("get"), KEYS, st.just(b"")),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_btree_matches_dict_and_stays_sorted(ops):
    t = BTree.create(None, bsize=512, in_memory=True)
    try:
        model: dict[bytes, bytes] = {}
        for op, key, value in ops:
            if op == "put":
                assert t.put(key, value) == 0
                model[key] = value
            elif op == "delete":
                assert t.delete(key) == (0 if key in model else 1)
                model.pop(key, None)
            else:
                assert t.get(key) == model.get(key)
        assert list(t.items()) == sorted(model.items())
        assert len(t) == len(model)
        t.check_invariants()
    finally:
        t.close()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.binary(min_size=1, max_size=16), max_size=200),
    bsize=st.sampled_from([512, 1024]),
)
def test_btree_bulk_insert_sorted(keys, bsize):
    """Any key set, any page size: iteration is exactly sorted(keys)."""
    t = BTree.create(None, bsize=bsize, in_memory=True)
    try:
        for k in keys:
            t.put(k, k)
        assert [k for k, _v in t.items()] == sorted(keys)
        t.check_invariants()
    finally:
        t.close()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_btree_disk_reopen_matches(ops, tmp_path_factory):
    path = tmp_path_factory.mktemp("bt") / "t.bt"
    t = BTree.create(path, bsize=512)
    model: dict[bytes, bytes] = {}
    try:
        for op, key, value in ops:
            if op == "put":
                t.put(key, value)
                model[key] = value
            elif op == "delete":
                t.delete(key)
                model.pop(key, None)
    finally:
        t.close()
    t2 = BTree.open_file(path)
    try:
        assert list(t2.items()) == sorted(model.items())
        t2.check_invariants()
    finally:
        t2.close()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(0, 3000), min_size=1, max_size=8),
)
def test_btree_mixed_inline_and_overflow_data(sizes):
    """Values straddling the big-data threshold round-trip correctly."""
    t = BTree.create(None, bsize=512, in_memory=True)
    try:
        for i, size in enumerate(sizes):
            t.put(f"k{i}".encode(), bytes([i % 256]) * size)
        for i, size in enumerate(sizes):
            assert t.get(f"k{i}".encode()) == bytes([i % 256]) * size
        t.check_invariants()
    finally:
        t.close()
