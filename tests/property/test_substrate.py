"""Property tests for the substrate: buffer pool, bitmaps, allocators.

The buffer pool's contract is transparency: any sequence of page writes
and reads through the pool must observe exactly what direct file access
would, for every pool size and policy.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dbm.bitmap import DirBitmap
from repro.baselines.gdbm.allocator import ExtentAllocator
from repro.core.buffer import BufferPool
from repro.storage.memfile import MemPagedFile

PAGE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 20), st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("read"), st.integers(0, 20), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=PAGE_OPS, cachesize=st.sampled_from([0, 64, 256, 4096]),
       policy=st.sampled_from(["lru", "fifo"]))
def test_buffer_pool_is_transparent(ops, cachesize, policy):
    """Pool-mediated state == plain-dict model, any budget, any policy."""
    f = MemPagedFile(64)
    pool = BufferPool(f, 64, cachesize, lambda key: key, policy=policy)
    model: dict[int, bytes] = {}
    for op, pageno, data in ops:
        if op == "write":
            hdr = pool.get(pageno)
            hdr.page[: len(data)] = data
            hdr.page[len(data):] = b"\0" * (64 - len(data))
            hdr.dirty = True
            model[pageno] = bytes(data) + b"\0" * (64 - len(data))
        elif op == "read":
            hdr = pool.get(pageno)
            expected = model.get(pageno, b"\0" * 64)
            assert bytes(hdr.page) == expected
        else:
            pool.flush()
    pool.drop_all()
    # after drop_all the file alone must hold everything
    for pageno, expected in model.items():
        assert f.read_page(pageno) == expected


@settings(max_examples=80, deadline=None)
@given(bits=st.lists(st.integers(0, 100_000), max_size=40))
def test_dirbitmap_matches_set_model(bits):
    bm = DirBitmap()
    model: set[int] = set()
    for b in bits:
        if b in model:
            bm.clear(b)
            model.discard(b)
        else:
            bm.set(b)
            model.add(b)
    for b in bits:
        assert bm.is_set(b) == (b in model)
    assert bm.count_set() == len(model)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dirbitmap_save_load_roundtrip(data, tmp_path_factory):
    bits = data.draw(st.sets(st.integers(0, 50_000), max_size=30))
    bm = DirBitmap()
    for b in bits:
        bm.set(b)
    bm.maxbuck = data.draw(st.integers(0, 2**40))
    bm.block_size = data.draw(st.sampled_from([0, 256, 1024]))
    path = tmp_path_factory.mktemp("bm") / "x.dir"
    bm.save(path)
    loaded = DirBitmap.load(path)
    assert loaded.maxbuck == bm.maxbuck
    assert loaded.block_size == bm.block_size
    for b in bits:
        assert loaded.is_set(b)
    assert loaded.count_set() == len(bits)


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 500)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=40,
    )
)
def test_extent_allocator_never_overlaps(ops):
    """Live extents never overlap, whatever the alloc/free sequence."""
    alloc = ExtentAllocator(0)
    live: list[tuple[int, int]] = []
    for op, arg in ops:
        if op == "alloc":
            off = alloc.alloc(arg)
            for o, s in live:
                assert off + arg <= o or off >= o + s, (
                    f"extent ({off},{arg}) overlaps ({o},{s})"
                )
            live.append((off, arg))
        elif live:
            idx = arg % len(live)
            off, size = live.pop(idx)
            alloc.free(off, size)
