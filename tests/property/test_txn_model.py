"""Model-based property test for transactions: committed == visible,
aborted == invisible, across crashes and reopens."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.table import HashTable

KEYS = st.binary(min_size=1, max_size=10)
VALUES = st.binary(min_size=0, max_size=50)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
    ),
    max_size=20,
)

#: a block is one transaction: its ops, its fate, and whether the
#: process "dies" (drop without close) right after it
BLOCKS = st.lists(
    st.tuples(OPS, st.sampled_from(["commit", "abort"]), st.booleans()),
    max_size=6,
)


def _apply(table, model, ops, fate):
    """Run one transaction; fold it into ``model`` only on commit."""
    table.begin()
    staged = dict(model)
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            staged[key] = value
        else:
            table.delete(key)
            staged.pop(key, None)
        # inside the transaction the staged state is already visible
        assert table.get(key) == staged.get(key)
    if fate == "commit":
        table.commit()
        model.clear()
        model.update(staged)
    else:
        table.abort()


def _check(table, model):
    assert table.nkeys == len(model)
    for key, value in model.items():
        assert table.get(key) == value


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(blocks=BLOCKS)
def test_committed_visible_aborted_invisible(blocks, tmp_path_factory):
    """After any sequence of transactions -- some committed, some
    aborted, some followed by a simulated crash -- a reopened table
    equals the model that folded in only the commits."""
    path = tmp_path_factory.mktemp("txn") / "t.db"
    model: dict[bytes, bytes] = {}
    table = HashTable.create(path, bsize=512, durability="wal")
    try:
        for ops, fate, crash in blocks:
            _apply(table, model, ops, fate)
            _check(table, model)
            if crash:
                del table  # kill -9: no close, no checkpoint
                table = HashTable.open_file(path, durability="wal")
                _check(table, model)
    finally:
        table.close()
    # one final clean reopen (recovery after close is a no-op replay)
    with HashTable.open_file(path) as table2:
        _check(table2, model)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(blocks=BLOCKS)
def test_in_memory_matches_disk_model(blocks):
    """The same transactional semantics hold for the in-memory WAL."""
    model: dict[bytes, bytes] = {}
    table = HashTable.create(None, bsize=512, in_memory=True, durability="wal")
    try:
        for ops, fate, _crash in blocks:
            _apply(table, model, ops, fate)
            _check(table, model)
    finally:
        table.close()
