"""Model-based property tests: every hashing system against a Python dict.

Random operation sequences (put/get/delete/replace) must leave each system
observationally equal to a plain dict -- the strongest single invariant a
key/value store has.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dynahash import DynaHash
from repro.baselines.hsearch import Hsearch
from repro.core.table import HashTable

# compact keyspace so operations collide often
KEYS = st.binary(min_size=0, max_size=12)
VALUES = st.binary(min_size=0, max_size=40)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("get"), KEYS, st.just(b"")),
    ),
    max_size=60,
)


def run_ops_against_model(table_put, table_get, table_delete, ops):
    model: dict[bytes, bytes] = {}
    for op, key, value in ops:
        if op == "put":
            table_put(key, value)
            model[key] = value
        elif op == "delete":
            assert table_delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table_get(key) == model.get(key)
    return model


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_hashtable_memory_matches_dict(ops):
    t = HashTable.create(None, bsize=64, ffactor=4, in_memory=True)
    try:
        model = run_ops_against_model(t.put, t.get, t.delete, ops)
        assert dict(t.items()) == model
        assert len(t) == len(model)
        t.check_invariants()
    finally:
        t.close()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_hashtable_disk_matches_dict_after_reopen(ops, tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "t.db"
    t = HashTable.create(path, bsize=64, ffactor=4, cachesize=512)
    try:
        model = run_ops_against_model(t.put, t.get, t.delete, ops)
    finally:
        t.close()
    t2 = HashTable.open_file(path)
    try:
        assert dict(t2.items()) == model
        t2.check_invariants()
    finally:
        t2.close()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_dynahash_matches_dict(ops):
    d = DynaHash(ffactor=2)
    model = run_ops_against_model(d.put, d.get, d.delete, ops)
    assert dict(d.items()) == model
    d.check_invariants()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pairs=st.dictionaries(KEYS, VALUES, max_size=40),
    variant=st.sampled_from(["default", "div", "chained"]),
)
def test_hsearch_stores_first_value(pairs, variant):
    """hsearch ENTER semantics: first value wins, FIND returns it."""
    t = Hsearch(max(len(pairs) * 2, 8), variant=variant)
    for k, v in pairs.items():
        t.enter(k, v)
    for k, v in pairs.items():
        assert t.find(k) == v
    assert len(t) == len(pairs)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_dbm_matches_dict(ops, tmp_path_factory):
    from repro.baselines.dbm import DbmFile

    base = tmp_path_factory.mktemp("dbm") / "db"
    with DbmFile(base, "n", block_size=1024) as db:
        model = run_ops_against_model(
            db.store, db.fetch, db.delete, ops
        )
        assert dict(db.items()) == model


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_sdbm_matches_dict(ops, tmp_path_factory):
    from repro.baselines.sdbm import Sdbm

    base = tmp_path_factory.mktemp("sdbm") / "db"
    with Sdbm(base, "n", block_size=1024) as db:
        model = run_ops_against_model(db.store, db.fetch, db.delete, ops)
        assert dict(db.items()) == model


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_gdbm_matches_dict(ops, tmp_path_factory):
    from repro.baselines.gdbm import Gdbm

    path = tmp_path_factory.mktemp("gdbm") / "g.db"
    with Gdbm(path, "n", block_size=512) as db:
        model = run_ops_against_model(db.store, db.fetch, db.delete, ops)
        assert dict(db.items()) == model


# -- concurrency: linearizability under the race harness ----------------------

THREAD_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS),
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("scan")),
    ),
    max_size=12,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    scripts=st.dictionaries(
        st.sampled_from(["t0", "t1", "t2"]), THREAD_OPS, min_size=2, max_size=3
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_concurrent_table_is_linearizable(scripts, seed):
    """K logical threads of interleaved get/put/delete/scan ops on one
    ``concurrent=True`` table are linearizable: the harness's grant order
    IS the linearization (in-memory tables have no page-I/O yield points,
    so each op runs entirely within one grant), and replaying that order
    against a plain dict must predict every logged result exactly.
    """
    from repro.access.db import db_open
    from tests.concurrency.harness import SCAN_LIMIT, RaceHarness

    db = db_open(None, "hash", concurrent=True, bsize=64, ffactor=4)
    try:
        out = RaceHarness(db, scripts).record(seed)
        assert not out.errors, out.errors
        model: dict[bytes, bytes] = {}
        progress = {name: 0 for name in scripts}
        for name in out.schedule:
            i = progress[name]
            if i >= len(scripts[name]):
                continue  # retirement grant, no op ran
            progress[name] = i + 1
            op = scripts[name][i]
            logged_op, outcome = out.logs[name][i]
            assert logged_op == op
            if op[0] == "put":
                assert outcome == ("ok", 0)
                model[op[1]] = op[2]
            elif op[0] == "delete":
                assert outcome == ("ok", 0 if op[1] in model else 1)
                model.pop(op[1], None)
            elif op[0] == "get":
                assert outcome == ("ok", model.get(op[1]))
            else:  # scan: the key set at this instant, up to the limit
                assert outcome[0] == "ok"
                if len(model) <= SCAN_LIMIT:
                    assert sorted(outcome[1]) == sorted(model)
                else:
                    assert len(outcome[1]) == SCAN_LIMIT
                    assert set(outcome[1]) <= set(model)
        assert all(progress[n] == len(scripts[n]) for n in scripts)
        assert sorted(out.items) == sorted(model.items())
    finally:
        db.close()
