"""Model-based property tests for recno: the model is a Python list."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.access.recno import Recno

DATA = st.binary(max_size=30)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), DATA, st.just(0)),
        st.tuples(st.just("insert"), DATA, st.integers(1, 40)),
        st.tuples(st.just("delete"), st.just(b""), st.integers(1, 40)),
        st.tuples(st.just("set"), DATA, st.integers(1, 40)),
        st.tuples(st.just("get"), st.just(b""), st.integers(1, 40)),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_recno_matches_list(ops):
    r = Recno.create(None, in_memory=True)
    try:
        model: list[bytes] = []
        for op, data, recno in ops:
            if op == "append":
                assert r.append(data) == len(model) + 1
                model.append(data)
            elif op == "insert":
                if recno <= len(model) + 1:
                    r.insert_rec(recno, data)
                    model.insert(recno - 1, data)
                else:
                    # past-the-end insert materializes the gap
                    r.insert_rec(recno, data)
                    model.extend([b""] * (recno - 1 - len(model)))
                    model.append(data)
            elif op == "delete":
                ok = r.delete_rec(recno)
                assert ok == (1 <= recno <= len(model))
                if ok:
                    del model[recno - 1]
            elif op == "set":
                r.put_rec(recno, data)
                model.extend([b""] * (recno - len(model)))
                model[recno - 1] = data
            else:  # get
                expected = model[recno - 1] if recno <= len(model) else None
                assert r.get_rec(recno) == expected
        assert list(r.records()) == model
        assert len(r) == len(model)
    finally:
        r.close()


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    lines=st.lists(DATA, max_size=60),
    reclen=st.integers(1, 40),
)
def test_fixed_length_always_reclen(lines, reclen):
    r = Recno.create(None, reclen=reclen, in_memory=True)
    try:
        stored = 0
        for line in lines:
            if len(line) <= reclen:
                r.append(line)
                stored += 1
        for i in range(1, stored + 1):
            rec = r.get_rec(i)
            assert len(rec) == reclen
    finally:
        r.close()
