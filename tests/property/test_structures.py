"""Property tests on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.addressing import (
    bucket_to_page,
    make_oaddr,
    oaddr_to_page,
    oaddr_to_slot,
    slot_to_oaddr,
)
from repro.core.header import Header
from repro.core.pages import PageView, empty_page, pair_bytes_needed
from repro.core.table import HashTable


# ---------------------------------------------------------------- pages

SMALL_PAIRS = st.lists(
    st.tuples(st.binary(max_size=20), st.binary(max_size=30)), max_size=12
)


@settings(max_examples=100, deadline=None)
@given(pairs=SMALL_PAIRS)
def test_page_roundtrips_any_pair_sequence(pairs):
    page = PageView(empty_page(512))
    stored = []
    for k, v in pairs:
        if page.fits(len(k), len(v)):
            page.add_pair(k, v)
            stored.append((k, v))
    assert page.nslots == len(stored)
    for i, (k, v) in enumerate(stored):
        assert page.get_pair(i) == (k, v)


@settings(max_examples=100, deadline=None)
@given(pairs=SMALL_PAIRS, delete_order=st.lists(st.integers(0, 30), max_size=12))
def test_page_delete_preserves_remaining(pairs, delete_order):
    page = PageView(empty_page(512))
    stored = []
    for k, v in pairs:
        if page.fits(len(k), len(v)):
            page.add_pair(k, v)
            stored.append((k, v))
    for raw in delete_order:
        if not stored:
            break
        i = raw % len(stored)
        page.delete_slot(i)
        stored.pop(i)
    assert page.nslots == len(stored)
    for i, (k, v) in enumerate(stored):
        assert page.get_pair(i) == (k, v)
    # space accounting exact
    used = sum(pair_bytes_needed(len(k), len(v)) for k, v in stored)
    assert page.free_space == 512 - 8 - used


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=512))
def test_serialized_page_reparses(data):
    """Serialization is just the buffer: any page state survives a byte
    copy."""
    page = PageView(empty_page(256))
    if len(data) >= 2:
        page.add_pair(data[: len(data) // 2][:50], data[len(data) // 2 :][:50])
    copy = PageView(bytearray(bytes(page.buf)))
    assert copy.nslots == page.nslots
    for i in range(copy.nslots):
        assert copy.get_pair(i) == page.get_pair(i)


# ---------------------------------------------------------------- header

@settings(max_examples=100, deadline=None)
@given(
    bshift=st.integers(6, 15),
    ffactor=st.integers(1, 1000),
    max_bucket=st.integers(0, 2**31),
    nkeys=st.integers(0, 2**40),
    spares=st.lists(st.integers(0, 2**31 - 1), min_size=32, max_size=32),
    bitmaps=st.lists(st.integers(0, 0xFFFF), min_size=32, max_size=32),
)
def test_header_roundtrip(bshift, ffactor, max_bucket, nkeys, spares, bitmaps):
    h = Header(
        bsize=1 << bshift,
        bshift=bshift,
        ffactor=ffactor,
        max_bucket=max_bucket,
        nkeys=nkeys,
    )
    h.spares = spares
    h.bitmaps = bitmaps
    assert Header.unpack(h.pack()) == h


# ---------------------------------------------------------------- addressing

@st.composite
def consistent_spares(draw):
    """A cumulative spares array as the allocator would build it."""
    increments = draw(
        st.lists(st.integers(0, 50), min_size=32, max_size=32)
    )
    spares = []
    acc = 0
    for inc in increments:
        acc += inc
        spares.append(acc)
    return spares


@settings(max_examples=100, deadline=None)
@given(spares=consistent_spares(), hdr_pages=st.integers(1, 8))
def test_bucket_and_overflow_pages_never_collide(spares, hdr_pages):
    used: set[int] = set()
    for b in range(64):
        page = bucket_to_page(b, hdr_pages, spares)
        assert page not in used
        used.add(page)
    for s in range(7):  # split points covering buckets 0..63
        count = spares[s] - (spares[s - 1] if s else 0)
        for p in range(1, min(count, 50) + 1):
            page = oaddr_to_page(make_oaddr(s, p), hdr_pages, spares)
            assert page not in used
            used.add(page)


@settings(max_examples=100, deadline=None)
@given(spares=consistent_spares())
def test_slot_oaddr_bijection(spares):
    ovfl_point = 31
    total = spares[ovfl_point]
    for slot in range(min(total, 200)):
        oaddr = slot_to_oaddr(slot, spares, ovfl_point)
        assert oaddr_to_slot(oaddr, spares) == slot


# ---------------------------------------------------------------- table invariants

@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.binary(min_size=1, max_size=16), max_size=80),
    ffactor=st.integers(1, 16),
)
def test_no_key_lost_across_splits(keys, ffactor):
    """Splits never lose or duplicate keys, whatever the fill factor."""
    t = HashTable.create(None, bsize=128, ffactor=ffactor, in_memory=True)
    try:
        for k in keys:
            t.put(k, k[::-1])
        assert sorted(t.keys()) == sorted(keys)
        assert len(t) == len(keys)
        t.check_invariants()
    finally:
        t.close()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.binary(min_size=1, max_size=10), min_size=1, max_size=50),
    cachesize=st.sampled_from([0, 128, 1024, 1 << 16]),
)
def test_pool_size_never_changes_results(keys, cachesize):
    """Figure 7's correctness premise: the buffer pool is transparent."""
    t = HashTable.create(
        None, bsize=64, ffactor=4, cachesize=cachesize, in_memory=True
    )
    try:
        for k in keys:
            t.put(k, k + k)
        for k in keys:
            assert t.get(k) == k + k
        t.check_invariants()
    finally:
        t.close()
