"""Tests for the benchmark harness (timing, adapters, suites, report)."""

import pytest

from repro.bench.adapters import (
    DynahashAdapter,
    GdbmAdapter,
    HsearchAdapter,
    NdbmAdapter,
    NewHashAdapter,
    NewHashMemoryAdapter,
    SdbmAdapter,
)
from repro.bench.report import (
    format_bar_table,
    format_comparison_table,
    format_series_table,
    pct_change,
)
from repro.bench.suites import disk_suite, memory_suite
from repro.bench.timing import Measurement, measure
from repro.storage.iostats import IOSnapshot
from repro.workloads import passwd_pairs


class TestMeasure:
    def test_measure_returns_result_and_clocks(self):
        result, m = measure(lambda: 42)
        assert result == 42
        assert m.elapsed >= 0
        assert m.user >= 0
        assert m.cpu == m.user + m.system

    def test_io_delta_tracked(self):
        snaps = [IOSnapshot(page_reads=5), IOSnapshot(page_reads=9)]
        it = iter(snaps)
        _res, m = measure(lambda: None, io_fn=lambda: next(it))
        assert m.io.page_reads == 4

    def test_metric_lookup(self):
        m = Measurement(1.0, 2.0, 3.5, IOSnapshot(page_reads=7, page_writes=3))
        assert m.metric("user") == 1.0
        assert m.metric("cpu") == 3.0
        assert m.metric("page_io") == 10.0
        assert m.metric("page_reads") == 7.0

    def test_addition(self):
        a = Measurement(1, 1, 1, IOSnapshot(page_reads=1))
        b = Measurement(2, 2, 2, IOSnapshot(page_writes=5))
        c = a + b
        assert c.user == 3
        assert c.io.page_io == 6


class TestPctChange:
    def test_paper_formula(self):
        # % = 100 * (old - new) / old
        assert pct_change(10, 5) == 50.0
        assert pct_change(5, 10) == -100.0
        assert pct_change(0, 5) is None
        assert pct_change(4, 4) == 0.0


DISK_ADAPTERS = [NewHashAdapter, NdbmAdapter, SdbmAdapter, GdbmAdapter]
MEM_ADAPTERS = [NewHashMemoryAdapter, HsearchAdapter, DynahashAdapter]


@pytest.mark.parametrize("cls", DISK_ADAPTERS, ids=lambda c: c.name)
class TestDiskAdapters:
    def test_verbs(self, cls, tmp_path):
        a = cls(str(tmp_path))
        a.create(nelem_hint=50)
        a.put(b"k", b"v")
        assert a.get(b"k") == b"v"
        assert a.get(b"missing") is None
        a.sync()
        assert list(a.iter_keys()) == [b"k"]
        assert list(a.iter_items()) == [(b"k", b"v")]
        a.reopen()
        assert a.get(b"k") == b"v"
        a.close()
        a.destroy()

    def test_io_snapshot_cumulative_across_reopen(self, cls, tmp_path):
        a = cls(str(tmp_path))
        a.create()
        for i in range(50):
            a.put(f"k{i}".encode(), b"v")
        before = a.io_snapshot().page_io
        a.reopen()
        for i in range(50):
            a.get(f"k{i}".encode())
        after = a.io_snapshot().page_io
        assert after >= before  # counters never reset on reopen
        a.close()
        a.destroy()


@pytest.mark.parametrize("cls", MEM_ADAPTERS, ids=lambda c: c.name)
class TestMemoryAdapters:
    def test_verbs(self, cls, tmp_path):
        a = cls(str(tmp_path))
        a.create(nelem_hint=100)
        a.put(b"k", b"v")
        assert a.get(b"k") == b"v"
        a.close()

    def test_not_disk(self, cls, tmp_path):
        assert cls.is_disk is False


class TestSuites:
    def test_disk_suite_produces_all_tests(self, tmp_path):
        pairs = list(passwd_pairs(50))
        results = disk_suite(NewHashAdapter(str(tmp_path)), pairs,
                             nelem_hint=len(pairs))
        assert set(results) == {
            "create", "read", "verify", "sequential", "sequential+data",
        }
        for m in results.values():
            assert m.elapsed >= 0

    def test_disk_suite_on_baseline(self, tmp_path):
        pairs = list(passwd_pairs(30))
        results = disk_suite(NdbmAdapter(str(tmp_path)), pairs)
        assert results["create"].io.page_io > 0

    def test_memory_suite(self, tmp_path):
        pairs = list(passwd_pairs(30))
        results = memory_suite(HsearchAdapter(str(tmp_path)), pairs)
        assert "create/read" in results

    def test_suite_catches_data_corruption(self, tmp_path):
        """verify must fail loudly if an adapter returns wrong data."""

        class LyingAdapter(NewHashMemoryAdapter):
            def get(self, key):
                return b"wrong"

        a = LyingAdapter(str(tmp_path))
        pairs = list(passwd_pairs(5))
        a.create()
        for k, v in pairs:
            a.put(k, v)
        from repro.bench.suites import verify_test

        with pytest.raises(AssertionError):
            verify_test(a, pairs)


class TestReport:
    def make_results(self):
        m1 = Measurement(1.0, 0.5, 2.0, IOSnapshot(page_reads=10))
        m2 = Measurement(2.0, 1.0, 4.0, IOSnapshot(page_reads=100))
        return {"create": m1}, {"create": m2}

    def test_comparison_table_contains_pct(self):
        new, old = self.make_results()
        text = format_comparison_table("T", new, old)
        assert "create" in text
        assert "50" in text  # 100*(2-1)/2 user improvement
        assert "hash" in text and "ndbm" in text

    def test_series_table_shape(self):
        cells = {(128, 1): 1.5, (128, 8): 0.5, (256, 1): 2.0}
        text = format_series_table(
            "Fig", "bsize", "ffactor", [128, 256], [1, 8], cells
        )
        assert "128" in text and "256" in text
        assert "-" in text  # missing cell placeholder

    def test_bar_table(self):
        text = format_bar_table(
            "Fig6", [4, 8], {"pre-sized user": {4: 1.0, 8: 0.5}}
        )
        assert "pre-sized user" in text
        assert "1.00" in text


class TestBenchJson:
    def test_registry_snapshot_round_trip(self, tmp_path):
        import json

        from repro.bench.report import registry_snapshot, write_bench_json

        payload = registry_snapshot(
            {"nkeys": 3, "ops": {"counts": {"gets": 1}}},
            label="unit",
            context={"scale": 3},
        )
        path = write_bench_json("unit_snapshot", payload, tmp_path)
        assert path.endswith("BENCH_unit_snapshot.json")
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == payload
        assert loaded["context"]["scale"] == 3
        assert loaded["stat"]["ops"]["counts"]["gets"] == 1
