"""Unit tests for the simulated 1991 I/O stack."""

import pytest

from repro.storage.memfile import MemPagedFile
from repro.storage.simdisk import SimulatedDisk


def make_disk(**kwargs):
    params = dict(
        seek_ms=10.0,
        transfer_bytes_s=1_000_000,
        os_cache_bytes=4000,  # 4 pages of 1000 bytes
        syscall_ms=1.0,
    )
    params.update(kwargs)
    return SimulatedDisk(MemPagedFile(1000), **params)


class TestModel:
    def test_miss_pays_syscall_seek_transfer(self):
        d = make_disk()
        d.write_page(0, b"a")
        # 1ms syscall + 10ms seek + 1000 bytes at 1MB/s (1ms)
        assert d.sim_seconds == pytest.approx(0.012)
        assert d.seeks == 1
        assert d.cache_misses == 1

    def test_sequential_miss_skips_seek(self):
        d = make_disk(os_cache_bytes=0)
        d.write_page(0, b"a")
        d.write_page(1, b"b")
        d.write_page(2, b"c")
        assert d.seeks == 1
        assert d.sim_seconds == pytest.approx(0.010 + 3 * 0.002)

    def test_backward_jump_seeks(self):
        d = make_disk(os_cache_bytes=0)
        d.write_page(5, b"a")
        d.write_page(2, b"b")
        assert d.seeks == 2

    def test_cache_hit_costs_syscall_only(self):
        d = make_disk()
        d.write_page(0, b"a")
        cost = d.sim_seconds
        d.read_page(0)
        assert d.sim_seconds == pytest.approx(cost + 0.001)
        assert d.cache_hits == 1

    def test_cache_is_lru_bounded(self):
        d = make_disk()  # 4-page cache
        d.write_page(0, b"a")
        for pg in range(1, 6):
            d.write_page(pg, b"x")
        before = d.sim_seconds
        d.read_page(0)  # evicted: full miss again
        assert d.sim_seconds > before + 0.010
        assert d.cache_misses == 7

    def test_delayed_write_hit_is_cheap(self):
        """4.3BSD-style: rewriting a cached page is syscall-only."""
        d = make_disk()
        d.write_page(0, b"a")
        cost = d.sim_seconds
        d.write_page(0, b"b")
        assert d.sim_seconds == pytest.approx(cost + 0.001)

    def test_sync_charges_a_seek(self):
        d = make_disk()
        before = d.sim_seconds
        d.sync()
        assert d.sim_seconds == pytest.approx(before + 0.010)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            SimulatedDisk(MemPagedFile(64), seek_ms=-1)
        with pytest.raises(ValueError):
            SimulatedDisk(MemPagedFile(64), syscall_ms=-1)


class TestDelegation:
    def test_data_passes_through(self):
        d = make_disk()
        d.write_page(3, b"hello")
        assert d.read_page(3)[:5] == b"hello"
        assert d.pagesize == 1000
        assert d.npages() == 4
        d.close()
        assert d.closed

    def test_real_stats_still_counted(self):
        d = make_disk()
        d.write_page(0, b"x")
        d.read_page(0)
        assert d.stats.page_writes == 1
        assert d.stats.page_reads == 1


class TestWithHashTable:
    def test_table_runs_on_simulated_disk(self, tmp_path):
        from repro.core.table import HashTable

        wrapped = {}

        def wrapper(f):
            wrapped["disk"] = SimulatedDisk(f)
            return wrapped["disk"]

        t = HashTable.create(
            tmp_path / "sim.db", bsize=256, cachesize=1024, file_wrapper=wrapper
        )
        for i in range(300):
            t.put(f"k{i}".encode(), b"v" * 20)
        for i in range(300):
            assert t.get(f"k{i}".encode()) == b"v" * 20
        t.close()
        disk = wrapped["disk"]
        assert disk.sim_seconds > 0
        assert disk.seeks > 0

    def test_bigger_pool_less_simulated_time(self, tmp_path):
        """Figure 7's conclusion holds on the 1991 clock too: a bigger
        user-level pool avoids even the syscall costs the OS cache
        cannot."""
        from repro.core.table import HashTable

        def run(cachesize, name):
            holder = {}

            def wrapper(f):
                holder["d"] = SimulatedDisk(f, os_cache_bytes=16 * 1024)
                return holder["d"]

            t = HashTable.create(
                tmp_path / name, bsize=256, ffactor=8,
                cachesize=cachesize, file_wrapper=wrapper,
            )
            for i in range(1000):
                t.put(f"key-{i}".encode(), b"value")
            for i in range(1000):
                t.get(f"key-{i}".encode())
            t.close()
            return holder["d"].sim_seconds

        small = run(1024, "small.db")
        large = run(1 << 20, "large.db")
        assert large < small / 2
