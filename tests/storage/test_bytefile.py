"""Unit tests for the byte-offset file (gdbm substrate)."""

import pytest

from repro.storage.bytefile import ByteFile


class TestByteFile:
    def test_roundtrip(self, tmp_path):
        with ByteFile(tmp_path / "b.db", create=True) as f:
            f.write_at(0, b"hello")
            f.write_at(100, b"world")
            assert f.read_at(0, 5) == b"hello"
            assert f.read_at(100, 5) == b"world"

    def test_short_read_is_error(self, tmp_path):
        with ByteFile(tmp_path / "b.db", create=True) as f:
            f.write_at(0, b"abc")
            with pytest.raises(EOFError):
                f.read_at(0, 10)

    def test_size(self, tmp_path):
        with ByteFile(tmp_path / "b.db", create=True) as f:
            assert f.size() == 0
            f.write_at(10, b"x")
            assert f.size() == 11

    def test_reopen_preserves_content(self, tmp_path):
        p = tmp_path / "b.db"
        with ByteFile(p, create=True) as f:
            f.write_at(0, b"persist")
        with ByteFile(p, readonly=True) as f:
            assert f.read_at(0, 7) == b"persist"

    def test_stats(self, tmp_path):
        with ByteFile(tmp_path / "b.db", create=True) as f:
            f.write_at(0, b"xyz")
            f.read_at(0, 3)
            assert f.stats.bytes_written == 3
            assert f.stats.bytes_read == 3

    def test_closed_rejects_operations(self, tmp_path):
        f = ByteFile(tmp_path / "b.db", create=True)
        f.close()
        with pytest.raises(ValueError):
            f.read_at(0, 1)
        f.close()  # idempotent
