"""Unit tests for the disk-backed paged file."""

import pytest

from repro.storage.pagedfile import PagedFile


class TestCreation:
    def test_create_and_reopen(self, tmp_path):
        p = tmp_path / "f.db"
        with PagedFile(p, 256, create=True) as f:
            f.write_page(0, b"hello")
        with PagedFile(p, 256) as f:
            assert f.read_page(0).startswith(b"hello")

    def test_anonymous_file_has_no_path(self):
        with PagedFile(None, 128) as f:
            assert f.path is None
            f.write_page(3, b"x")
            assert f.read_page(3)[0:1] == b"x"

    def test_bad_pagesize_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PagedFile(tmp_path / "f.db", 0, create=True)

    def test_readonly_create_conflict(self, tmp_path):
        with pytest.raises(ValueError):
            PagedFile(tmp_path / "f.db", 64, create=True, readonly=True)

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PagedFile(tmp_path / "nope.db", 64)


class TestPageIO:
    def test_read_returns_exactly_pagesize(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 512, create=True) as f:
            assert len(f.read_page(0)) == 512
            f.write_page(0, b"abc")
            assert len(f.read_page(0)) == 512

    def test_hole_reads_back_zeroes(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            f.write_page(10, b"\xff" * 64)
            assert f.read_page(5) == b"\0" * 64

    def test_short_write_zero_padded(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            f.write_page(0, b"ab")
            page = f.read_page(0)
            assert page[:2] == b"ab"
            assert page[2:] == b"\0" * 62

    def test_oversized_write_rejected(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            with pytest.raises(ValueError):
                f.write_page(0, b"x" * 65)

    def test_negative_page_rejected(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            with pytest.raises(ValueError):
                f.read_page(-1)
            with pytest.raises(ValueError):
                f.write_page(-1, b"")

    def test_sparse_far_page(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            f.write_page(100_000, b"far")
            assert f.read_page(100_000)[:3] == b"far"
            assert f.npages() == 100_001


class TestMaintenance:
    def test_npages_counts_partial(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 100, create=True) as f:
            assert f.npages() == 0
            f.write_page(1, b"x")
            assert f.npages() == 2

    def test_truncate(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            f.write_page(9, b"x" * 64)
            f.truncate(5)
            assert f.npages() == 5
            assert f.read_page(9) == b"\0" * 64

    def test_stats_count_operations(self, tmp_path):
        with PagedFile(tmp_path / "f.db", 64, create=True) as f:
            base = f.stats.syscalls  # the open
            f.write_page(0, b"a")
            f.read_page(0)
            f.sync()
            assert f.stats.page_writes == 1
            assert f.stats.page_reads == 1
            assert f.stats.syscalls == base + 3

    def test_operations_on_closed_file_raise(self, tmp_path):
        f = PagedFile(tmp_path / "f.db", 64, create=True)
        f.close()
        assert f.closed
        with pytest.raises(ValueError):
            f.read_page(0)
        with pytest.raises(ValueError):
            f.write_page(0, b"")
        f.close()  # idempotent

    def test_create_truncates_existing(self, tmp_path):
        p = tmp_path / "f.db"
        with PagedFile(p, 64, create=True) as f:
            f.write_page(0, b"old")
        with PagedFile(p, 64, create=True) as f:
            assert f.read_page(0) == b"\0" * 64
