"""FaultyPager semantics: each mode does exactly what it advertises."""

import pytest

from repro.storage import CrashPoint, FaultyPager, InjectedIOError, MemPagedFile
from repro.storage.bytefile import ByteFile

PAGESIZE = 128


def test_calibration_counts_ops_without_faulting():
    pager = FaultyPager(MemPagedFile(PAGESIZE))
    pager.write_page(0, b"a" * PAGESIZE)
    pager.read_page(0)
    pager.write_pages(1, b"b" * (2 * PAGESIZE))
    pager.sync()
    assert pager.ops == 4
    assert not pager.crashed


def test_crash_mode_kills_the_op_and_everything_after():
    pager = FaultyPager(MemPagedFile(PAGESIZE), fail_after=1, mode="crash")
    pager.write_page(0, b"a" * PAGESIZE)
    with pytest.raises(CrashPoint):
        pager.write_page(1, b"b" * PAGESIZE)  # op 1: dies, write lost
    assert pager.crashed
    with pytest.raises(CrashPoint):
        pager.read_page(0)  # the process is "dead"
    # ... but the file it leaves behind shows op 1 never happened
    assert pager.inner.read_page(0) == b"a" * PAGESIZE
    assert pager.inner.read_page(1) == b"\0" * PAGESIZE
    pager.close()  # post-mortem close never raises


def test_torn_write_lands_half_a_page():
    pager = FaultyPager(MemPagedFile(PAGESIZE), fail_after=0, mode="torn")
    with pytest.raises(CrashPoint):
        pager.write_page(0, b"x" * PAGESIZE)
    half = PAGESIZE // 2
    assert pager.inner.read_page(0) == b"x" * half + b"\0" * (PAGESIZE - half)


def test_torn_vectored_write_lands_a_page_prefix():
    pager = FaultyPager(MemPagedFile(PAGESIZE), fail_after=0, mode="torn")
    data = b"A" * PAGESIZE + b"B" * PAGESIZE + b"C" * PAGESIZE
    with pytest.raises(CrashPoint):
        pager.write_pages(0, data)
    assert pager.inner.read_page(0) == b"A" * PAGESIZE
    assert pager.inner.read_page(2) == b"\0" * PAGESIZE


def test_oserror_is_transient():
    pager = FaultyPager(MemPagedFile(PAGESIZE), fail_after=0, mode="oserror")
    with pytest.raises(InjectedIOError):
        pager.write_page(0, b"a" * PAGESIZE)
    assert not pager.crashed
    pager.write_page(0, b"b" * PAGESIZE)  # the pager lives on
    assert pager.read_page(0) == b"b" * PAGESIZE


def test_short_read_violates_page_contract_once():
    pager = FaultyPager(MemPagedFile(PAGESIZE), fail_after=1, mode="short_read")
    pager.write_page(0, b"z" * PAGESIZE)
    short = pager.read_page(0)
    assert len(short) == PAGESIZE // 2
    assert pager.read_page(0) == b"z" * PAGESIZE  # back to normal


def test_byte_granular_wrapping(tmp_path):
    inner = ByteFile(tmp_path / "b.db", create=True)
    pager = FaultyPager(inner, fail_after=1, mode="torn")
    pager.write_at(0, b"0123456789")
    with pytest.raises(CrashPoint):
        pager.write_at(10, b"ABCDEFGHIJ")  # only "ABCDE" lands
    assert inner.read_at_most(0, 100) == b"0123456789ABCDE"
    pager.close()


def test_bad_parameters():
    with pytest.raises(ValueError):
        FaultyPager(MemPagedFile(PAGESIZE), mode="meteor")
    with pytest.raises(ValueError):
        FaultyPager(MemPagedFile(PAGESIZE), fail_after=-1)
