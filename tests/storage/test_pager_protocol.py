"""Every storage backend satisfies the one Pager protocol.

These tests are the contract: whatever open_pager (or a wrapper) hands an
access method must behave identically for reads past EOF, vectored
writes, idempotent close and I/O accounting.
"""

import pytest

from repro.storage import (
    BytePagerAdapter,
    ByteFile,
    FaultyPager,
    MemPagedFile,
    PagedFile,
    Pager,
    open_pager,
)
from repro.storage.simdisk import SimulatedDisk

PAGESIZE = 256


def _make(kind, tmp_path):
    if kind == "paged":
        return PagedFile(tmp_path / "p.db", PAGESIZE, create=True)
    if kind == "mem":
        return MemPagedFile(PAGESIZE)
    if kind == "simdisk":
        return SimulatedDisk(MemPagedFile(PAGESIZE))
    if kind == "byte":
        return BytePagerAdapter(
            ByteFile(tmp_path / "b.db", create=True), PAGESIZE
        )
    if kind == "faulty":
        return FaultyPager(MemPagedFile(PAGESIZE))
    raise AssertionError(kind)


KINDS = ("paged", "mem", "simdisk", "byte", "faulty")


@pytest.mark.parametrize("kind", KINDS)
def test_satisfies_protocol(kind, tmp_path):
    pager = _make(kind, tmp_path)
    try:
        assert isinstance(pager, Pager)
    finally:
        pager.close()


@pytest.mark.parametrize("kind", KINDS)
def test_roundtrip_and_eof_semantics(kind, tmp_path):
    pager = _make(kind, tmp_path)
    try:
        assert pager.read_page(7) == b"\0" * PAGESIZE  # holes read zero
        pager.write_page(3, b"x" * PAGESIZE)
        pager.write_page(5, b"short")  # short writes are zero-padded
        assert pager.read_page(3) == b"x" * PAGESIZE
        assert pager.read_page(5) == b"short" + b"\0" * (PAGESIZE - 5)
        with pytest.raises(ValueError):
            pager.write_page(0, b"y" * (PAGESIZE + 1))
    finally:
        pager.close()


@pytest.mark.parametrize("kind", KINDS)
def test_vectored_write_is_one_syscall(kind, tmp_path):
    pager = _make(kind, tmp_path)
    try:
        data = b"".join(bytes([65 + i]) * PAGESIZE for i in range(4))
        before = pager.stats.snapshot()
        pager.write_pages(2, data)
        delta = pager.stats.snapshot() - before
        assert delta.page_writes == 4
        assert delta.syscalls == 1
        for i in range(4):
            assert pager.read_page(2 + i) == bytes([65 + i]) * PAGESIZE
        with pytest.raises(ValueError):
            pager.write_pages(0, b"not-a-page-multiple")
        with pytest.raises(ValueError):
            pager.write_pages(0, b"")
    finally:
        pager.close()


@pytest.mark.parametrize("kind", KINDS)
def test_close_is_idempotent(kind, tmp_path):
    pager = _make(kind, tmp_path)
    pager.close()
    assert pager.closed
    pager.close()  # second close is a no-op, not an error
    assert pager.closed


@pytest.mark.parametrize("kind", KINDS)
def test_page_io_hook_sees_vectored_pages(kind, tmp_path):
    pager = _make(kind, tmp_path)
    try:
        events = []
        pager.on_page_io = lambda kind_, pageno, nbytes: events.append(
            (kind_, pageno)
        )
        pager.write_pages(4, b"z" * (3 * PAGESIZE))
        assert events == [("write", 4), ("write", 5), ("write", 6)]
    finally:
        pager.close()


def test_open_pager_factory(tmp_path):
    mem = open_pager(pagesize=PAGESIZE, in_memory=True)
    assert isinstance(mem, MemPagedFile)
    mem.close()

    disk = open_pager(tmp_path / "f.db", pagesize=PAGESIZE, create=True)
    assert isinstance(disk, PagedFile)
    disk.write_page(0, b"hello")
    disk.close()

    wrapped = open_pager(
        tmp_path / "f.db", pagesize=PAGESIZE, readonly=True,
        wrapper=lambda f: FaultyPager(f),
    )
    assert isinstance(wrapped, FaultyPager)
    assert isinstance(wrapped, Pager)
    assert wrapped.read_page(0).startswith(b"hello")
    wrapped.close()


def test_byte_adapter_keeps_inner_byte_accounting(tmp_path):
    inner = ByteFile(tmp_path / "g.db", create=True)
    pager = BytePagerAdapter(inner, PAGESIZE)
    pager.write_page(0, b"a" * PAGESIZE)
    pager.read_page(0)
    # Page accounting on the adapter, byte accounting on the file.
    assert pager.stats.page_writes == 1 and pager.stats.page_reads == 1
    assert inner.stats.bytes_written == PAGESIZE
    assert inner.stats.bytes_read == PAGESIZE
    pager.close()
    assert inner.closed


def test_byte_adapter_truncate(tmp_path):
    pager = BytePagerAdapter(ByteFile(tmp_path / "t.db", create=True), PAGESIZE)
    pager.write_pages(0, b"q" * (4 * PAGESIZE))
    assert pager.npages() == 4
    pager.truncate(2)
    assert pager.npages() == 2
    assert pager.size_bytes() == 2 * PAGESIZE
    # The truncated tail reads back as a hole.
    assert pager.read_page(3) == b"\0" * PAGESIZE
    pager.close()
