"""Unit tests for the RAM-backed paged file."""

import pytest

from repro.storage.memfile import MemPagedFile


class TestMemPagedFile:
    def test_roundtrip(self):
        f = MemPagedFile(64)
        f.write_page(2, b"hello")
        assert f.read_page(2)[:5] == b"hello"
        assert len(f.read_page(2)) == 64

    def test_unwritten_page_reads_zero(self):
        f = MemPagedFile(32)
        assert f.read_page(7) == b"\0" * 32

    def test_npages_tracks_highest_written(self):
        f = MemPagedFile(32)
        assert f.npages() == 0
        f.write_page(4, b"x")
        assert f.npages() == 5
        assert f.size_bytes() == 5 * 32

    def test_truncate_drops_tail_pages(self):
        f = MemPagedFile(32)
        f.write_page(1, b"a")
        f.write_page(9, b"b")
        f.truncate(5)
        assert f.read_page(9) == b"\0" * 32
        assert f.read_page(1)[:1] == b"a"

    def test_readonly_rejects_writes(self):
        f = MemPagedFile(32, readonly=True)
        with pytest.raises(OSError):
            f.write_page(0, b"x")

    def test_oversized_write_rejected(self):
        f = MemPagedFile(32)
        with pytest.raises(ValueError):
            f.write_page(0, b"x" * 33)

    def test_stats_counted(self):
        f = MemPagedFile(32)
        f.write_page(0, b"x")
        f.read_page(0)
        f.read_page(1)
        assert f.stats.page_writes == 1
        assert f.stats.page_reads == 2

    def test_closed_rejects_operations(self):
        f = MemPagedFile(32)
        f.close()
        with pytest.raises(ValueError):
            f.read_page(0)

    def test_write_copy_isolated_from_caller(self):
        f = MemPagedFile(8)
        buf = bytearray(b"abcdefgh")
        f.write_page(0, bytes(buf))
        buf[0] = ord("z")
        assert f.read_page(0) == b"abcdefgh"

    def test_negative_page_rejected(self):
        f = MemPagedFile(8)
        with pytest.raises(ValueError):
            f.read_page(-2)
