"""The pager freelist: set semantics, the free/alloc protocol, intrusive
chain persistence, corruption detection, and tail trimming."""

from __future__ import annotations

import struct

import pytest

from repro.storage.freelist import (
    FREE_PAGE_MAGIC,
    FreeList,
    FreeListError,
)
from repro.storage.memfile import MemPagedFile
from repro.storage.pagedfile import PagedFile

_CHAIN = struct.Struct(">II")


@pytest.fixture(params=["disk", "mem"])
def pager(request, tmp_path):
    if request.param == "disk":
        io = PagedFile(tmp_path / "fl.db", pagesize=256, create=True)
    else:
        io = MemPagedFile(256)
    yield io
    io.close()


def _grow(io, n: int) -> None:
    for p in range(n):
        io.write_page(p, bytes([p % 251 + 1]) * io.pagesize)


class TestSetSemantics:
    def test_add_discard_pop_lowest(self):
        fl = FreeList()
        assert len(fl) == 0 and not fl
        fl.add(7)
        fl.add(3)
        fl.add(7)  # idempotent
        assert fl.pages() == (3, 7)
        assert 3 in fl and 5 not in fl
        assert fl.pop_lowest() == 3
        assert fl.pop_lowest() == 7
        assert fl.pop_lowest() is None

    def test_page_zero_rejected(self):
        fl = FreeList()
        with pytest.raises(ValueError):
            fl.add(0)
        with pytest.raises(ValueError):
            fl.add(-1)

    def test_dirty_tracking(self):
        fl = FreeList()
        assert not fl.dirty
        fl.add(2)
        assert fl.dirty
        fl.dirty = False
        fl.discard(99)  # absent: no state change
        assert not fl.dirty
        fl.discard(2)
        assert fl.dirty

    def test_clear_and_restore(self):
        fl = FreeList()
        fl.add(4)
        fl.dirty = False
        fl.clear()
        assert fl.dirty and len(fl) == 0
        fl.restore((8, 5))
        assert fl.pages() == (5, 8)
        assert fl.dirty


class TestProtocol:
    def test_free_then_alloc_reuses_lowest(self, pager):
        _grow(pager, 6)
        pager.free_page(4)
        pager.free_page(2)
        assert pager.alloc_page() == 2
        assert pager.alloc_page() == 4
        # empty freelist: allocation extends the file
        assert pager.alloc_page() == pager.npages()

    def test_free_past_eof_rejected(self, pager):
        _grow(pager, 3)
        with pytest.raises(ValueError):
            pager.free_page(3)

    def test_write_clears_free_mark(self, pager):
        _grow(pager, 5)
        pager.free_page(3)
        assert 3 in pager.freelist
        pager.write_page(3, b"\x01" * pager.pagesize)
        assert 3 not in pager.freelist  # a written page is live
        pager.free_page(3)
        pager.write_pages(2, b"\x02" * (2 * pager.pagesize))
        assert 3 not in pager.freelist

    def test_truncate_drops_cut_pages(self, pager):
        _grow(pager, 8)
        pager.free_page(2)
        pager.free_page(6)
        pager.truncate(5)
        assert 6 not in pager.freelist
        assert 2 in pager.freelist

    def test_readonly_pager_rejects(self, tmp_path):
        path = tmp_path / "ro.db"
        io = PagedFile(path, pagesize=256, create=True)
        _grow(io, 3)
        io.close()
        ro = PagedFile(path, pagesize=256, readonly=True)
        try:
            with pytest.raises(OSError):
                ro.free_page(1)
            with pytest.raises(OSError):
                ro.alloc_page()
        finally:
            ro.close()


class TestPersistence:
    def test_round_trip(self, pager):
        _grow(pager, 10)
        for p in (3, 7, 5):
            pager.free_page(p)
        head = pager.freelist.persist(pager)
        assert head == 3  # chain is written lowest-first
        assert not pager.freelist.dirty
        # persist survives write_page's free-mark clearing
        assert pager.freelist.pages() == (3, 5, 7)
        fresh = FreeList()
        assert fresh.load(pager, head, npages=pager.npages()) == 3
        assert fresh.pages() == (3, 5, 7)
        assert not fresh.dirty

    def test_empty_persist_returns_zero(self, pager):
        _grow(pager, 2)
        assert pager.freelist.persist(pager) == 0
        fresh = FreeList()
        assert fresh.load(pager, 0) == 0
        assert fresh.pages() == ()

    def test_bad_magic_raises(self, pager):
        _grow(pager, 4)
        pager.write_page(2, _CHAIN.pack(0xDEADBEEF, 0))
        fl = FreeList()
        with pytest.raises(FreeListError, match="magic"):
            fl.load(pager, 2)
        # a failed load leaves the previous set intact
        assert fl.pages() == ()

    def test_out_of_range_raises(self, pager):
        _grow(pager, 4)
        pager.write_page(2, _CHAIN.pack(FREE_PAGE_MAGIC, 900))
        with pytest.raises(FreeListError, match="outside"):
            FreeList().load(pager, 2)
        with pytest.raises(FreeListError, match="outside"):
            FreeList().load(pager, 900)

    def test_cycle_raises(self, pager):
        _grow(pager, 4)
        pager.write_page(1, _CHAIN.pack(FREE_PAGE_MAGIC, 2))
        pager.write_page(2, _CHAIN.pack(FREE_PAGE_MAGIC, 1))
        with pytest.raises(FreeListError, match="cycle"):
            FreeList().load(pager, 1)


class TestTrim:
    def test_tail_run_truncated(self, pager):
        _grow(pager, 10)
        for p in (3, 7, 8, 9):
            pager.free_page(p)
        cut = pager.freelist.trim(pager)
        assert cut == 3  # 7, 8, 9 touch EOF; 3 is interior
        assert pager.npages() == 7
        assert pager.freelist.pages() == (3,)

    def test_no_tail_run_is_noop(self, pager):
        _grow(pager, 5)
        pager.free_page(1)
        assert pager.freelist.trim(pager) == 0
        assert pager.npages() == 5
