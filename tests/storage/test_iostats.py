"""Unit tests for I/O accounting."""

from repro.storage.iostats import IOSnapshot, IOStats


class TestIOStats:
    def test_initial_state_is_zero(self):
        s = IOStats()
        assert s.page_reads == 0
        assert s.page_writes == 0
        assert s.syscalls == 0
        assert s.bytes_read == 0
        assert s.bytes_written == 0
        assert s.page_io == 0

    def test_record_read(self):
        s = IOStats()
        s.record_read(4096)
        assert s.page_reads == 1
        assert s.syscalls == 1
        assert s.bytes_read == 4096
        assert s.page_writes == 0

    def test_record_write(self):
        s = IOStats()
        s.record_write(512)
        assert s.page_writes == 1
        assert s.syscalls == 1
        assert s.bytes_written == 512

    def test_record_syscall_only_bumps_syscalls(self):
        s = IOStats()
        s.record_syscall()
        assert s.syscalls == 1
        assert s.page_io == 0

    def test_page_io_sums_reads_and_writes(self):
        s = IOStats()
        s.record_read(10)
        s.record_write(20)
        s.record_write(30)
        assert s.page_io == 3

    def test_reset(self):
        s = IOStats()
        s.record_read(100)
        s.reset()
        assert s.snapshot() == IOSnapshot()

    def test_merge(self):
        a = IOStats()
        b = IOStats()
        a.record_read(10)
        b.record_write(20)
        b.record_syscall()
        a.merge(b)
        assert a.page_reads == 1
        assert a.page_writes == 1
        assert a.syscalls == 3  # 1 read + 1 write + 1 explicit


class TestIOSnapshot:
    def test_snapshot_is_point_in_time(self):
        s = IOStats()
        s.record_read(10)
        snap = s.snapshot()
        s.record_read(10)
        assert snap.page_reads == 1
        assert s.page_reads == 2

    def test_subtraction_gives_delta(self):
        s = IOStats()
        s.record_read(10)
        before = s.snapshot()
        s.record_write(20)
        s.record_read(5)
        delta = s.snapshot() - before
        assert delta.page_reads == 1
        assert delta.page_writes == 1
        assert delta.bytes_read == 5

    def test_addition_accumulates(self):
        a = IOSnapshot(page_reads=1, bytes_read=10)
        b = IOSnapshot(page_writes=2, bytes_written=20, syscalls=3)
        c = a + b
        assert c.page_reads == 1
        assert c.page_writes == 2
        assert c.syscalls == 3
        assert c.page_io == 3
