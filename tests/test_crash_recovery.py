"""Crash/reopen sweep: kill every on-disk format at every syscall.

For each format, a calibration run counts the I/O operations of a small
insert workload.  The sweep then re-runs the workload once per operation
index with a :class:`FaultyPager` that injects a crash (or a torn write)
at exactly that operation, reopens the surviving file and demands one of:

- a clean, typed failure on open;
- a checker-detected inconsistency;
- a consistent table in which every readable key maps to the value that
  was written (a key may be absent -- the crash predates its sync -- but
  it may NEVER map to different bytes).

Zero silent-corruption reopens is the acceptance criterion of the fault
injection sweep.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.access.btree.btree import BTree
from repro.access.btree.check import verify_btree
from repro.baselines.dbm.dbmfile import DbmError, DbmFile
from repro.baselines.gdbm.gdbm import Gdbm, GdbmError
from repro.baselines.sdbm.sdbm import Sdbm, SdbmError
from repro.core.check import verify_table
from repro.core.errors import HashError
from repro.core.table import HashTable
from repro.storage.faulty import CrashPoint, FaultyPager

#: Failing in one of these ways on a post-crash file is "clean": the
#: library refused, detectably, rather than serving corrupt data.
CLEAN_ERRORS = (
    HashError,
    DbmError,
    SdbmError,
    GdbmError,
    OSError,
    EOFError,
    ValueError,
    IndexError,
    KeyError,
    struct.error,
)


def _pairs(n: int) -> list[tuple[bytes, bytes]]:
    return [
        (
            f"key-{i:04d}".encode(),
            (f"value-{i:04d}-" + "x" * (i % 37)).encode(),
        )
        for i in range(n)
    ]


class _Spec:
    """How to build, reopen and verify one on-disk format."""

    def __init__(self, name, npairs, build, verify):
        self.name = name
        self.pairs = _pairs(npairs)
        self.build = build  # (dirpath, wrapper, pairs) -> None
        self.verify = verify  # (dirpath, pairs) -> None (asserts)


def _assert_values(get, pairs) -> None:
    """Correct value or absent; anything else is silent corruption."""
    for k, v in pairs:
        try:
            got = get(k)
        except CLEAN_ERRORS:
            return  # detected while reading: not silent
        assert got is None or got == v, (
            f"silent corruption: {k!r} -> {got!r}, expected {v!r} or absence"
        )


# -- hash ------------------------------------------------------------------


def _build_hash(dirpath, wrapper, pairs):
    t = HashTable.create(
        os.path.join(dirpath, "t.hash"),
        bsize=512,
        cachesize=0,  # minimum buffers: force mid-workload evictions
        file_wrapper=wrapper,
    )
    for k, v in pairs:
        t.put(k, v)
    t.close()


def _verify_hash(dirpath, pairs):
    t = HashTable.open_file(os.path.join(dirpath, "t.hash"), readonly=True)
    try:
        if verify_table(t).errors:
            return  # detected
        _assert_values(t.get, pairs)
    finally:
        t.close()


# -- btree ------------------------------------------------------------------


def _build_btree(dirpath, wrapper, pairs):
    t = BTree.create(
        os.path.join(dirpath, "t.bt"),
        bsize=512,
        cachesize=0,  # minimum buffers: force mid-workload evictions
        file_wrapper=wrapper,
    )
    for k, v in pairs:
        t.put(k, v)
    t.close()


def _verify_btree(dirpath, pairs):
    t = BTree.open_file(os.path.join(dirpath, "t.bt"), readonly=True)
    try:
        if not verify_btree(t).ok:
            return
        _assert_values(t.get, pairs)
    finally:
        t.close()


# -- dbm / sdbm --------------------------------------------------------------


def _build_dbm(dirpath, wrapper, pairs):
    db = DbmFile(
        os.path.join(dirpath, "d"), "n", block_size=512, file_wrapper=wrapper
    )
    for k, v in pairs:
        db.store(k, v)
    db.close()


def _verify_dbm(dirpath, pairs):
    with DbmFile(os.path.join(dirpath, "d"), "r", block_size=512) as db:
        if db.check():
            return
        _assert_values(db.fetch, pairs)


def _build_sdbm(dirpath, wrapper, pairs):
    db = Sdbm(
        os.path.join(dirpath, "s"), "n", block_size=512, file_wrapper=wrapper
    )
    for k, v in pairs:
        db.store(k, v)
    db.close()


def _verify_sdbm(dirpath, pairs):
    with Sdbm(os.path.join(dirpath, "s"), "r", block_size=512) as db:
        if db.check():
            return
        _assert_values(db.fetch, pairs)


# -- gdbm -------------------------------------------------------------------


def _build_gdbm(dirpath, wrapper, pairs):
    db = Gdbm(
        os.path.join(dirpath, "g.db"), "n", block_size=512, file_wrapper=wrapper
    )
    for k, v in pairs:
        db.store(k, v)
    db.close()


def _verify_gdbm(dirpath, pairs):
    with Gdbm(os.path.join(dirpath, "g.db"), "r") as db:
        if db.check():
            return
        _assert_values(db.fetch, pairs)


SPECS = {
    "hash": _Spec("hash", 40, _build_hash, _verify_hash),
    "btree": _Spec("btree", 40, _build_btree, _verify_btree),
    "dbm": _Spec("dbm", 40, _build_dbm, _verify_dbm),
    "sdbm": _Spec("sdbm", 40, _build_sdbm, _verify_sdbm),
    "gdbm": _Spec("gdbm", 16, _build_gdbm, _verify_gdbm),
}


def _calibrate(spec, tmp_path) -> int:
    """Un-faulted run; returns the workload's I/O operation count."""
    cal = tmp_path / "calibration"
    cal.mkdir()
    holder = {}

    def capture(f):
        holder["pager"] = FaultyPager(f)
        return holder["pager"]

    spec.build(str(cal), capture, spec.pairs)
    ops = holder["pager"].ops
    assert ops > 5, f"{spec.name}: workload too small to sweep ({ops} ops)"
    return ops


@pytest.mark.parametrize("mode", ("crash", "torn"))
@pytest.mark.parametrize("fmt", sorted(SPECS))
def test_every_crash_point_recovers_or_fails_cleanly(fmt, mode, tmp_path):
    spec = SPECS[fmt]
    total_ops = _calibrate(spec, tmp_path)
    for fail_after in range(total_ops):
        rundir = tmp_path / f"{mode}-{fail_after}"
        rundir.mkdir()
        holder = {}

        def wrap(f, _i=fail_after):
            holder["pager"] = FaultyPager(f, fail_after=_i, mode=mode)
            return holder["pager"]

        try:
            spec.build(str(rundir), wrap, spec.pairs)
            crashed = False
        except CrashPoint:
            crashed = True
        finally:
            # Release the fd the "dead process" held; never raises.
            if "pager" in holder:
                holder["pager"].close()
        assert crashed, (
            f"{fmt}: op {fail_after} never executed "
            f"(calibration said {total_ops} ops)"
        )
        try:
            spec.verify(str(rundir), spec.pairs)
        except CLEAN_ERRORS:
            pass  # clean, typed refusal to open/walk the wreck


@pytest.mark.parametrize("mode", ("crash", "torn"))
@pytest.mark.parametrize("fmt", ("hash", "btree"))
def test_crash_under_concurrent_writers_never_corrupts_silently(fmt, mode, tmp_path):
    """Crash injection while four scheduled threads write concurrently:
    the reopened file must either fail its checker (detected) or serve
    only values some thread actually wrote -- the same zero-silent-
    corruption bar as the single-threaded sweep, now with the race
    harness interleaving the writers at every page-I/O yield point."""
    from repro.access.db import db_open
    from tests.concurrency.harness import RaceHarness

    pairs = _pairs(48)
    scripts = {
        f"w{t}": [("put", k, v) for k, v in pairs[t::4]] for t in range(4)
    }
    for fail_after in (3, 9, 21, 45):
        rundir = tmp_path / f"{mode}-{fail_after}"
        rundir.mkdir()
        path = rundir / "t.db"
        db = db_open(
            path, fmt, "n", concurrent=True, bsize=512, cachesize=0,
            file_wrapper=lambda f, _i=fail_after: FaultyPager(
                f, fail_after=_i, mode=mode
            ),
        )
        out = RaceHarness(db, scripts).record(seed=fail_after)
        try:
            db.close()
        except CLEAN_ERRORS:  # CrashPoint is an OSError
            pass
        # no worker wedged: every scripted op ran and was logged, either
        # succeeding or dying with a typed error at/after the crash point
        for name, log in out.logs.items():
            assert len(log) == len(scripts[name])
            for _op, outcome in log:
                assert outcome[0] in ("ok", "raise"), outcome
        try:
            if fmt == "hash":
                t = HashTable.open_file(path, readonly=True)
                try:
                    if verify_table(t).errors:
                        continue  # detected: not silent
                    _assert_values(t.get, pairs)
                finally:
                    t.close()
            else:
                t = BTree.open_file(path, readonly=True)
                try:
                    if not verify_btree(t).ok:
                        continue
                    _assert_values(t.get, pairs)
                finally:
                    t.close()
        except CLEAN_ERRORS:
            pass  # clean, typed refusal to open the wreck


@pytest.mark.parametrize("fmt", sorted(SPECS))
def test_transient_oserror_then_full_recovery(fmt, tmp_path):
    """'oserror' mode: the op fails once but the library object survives;
    a subsequent rebuild of the same file must work and verify clean."""
    spec = SPECS[fmt]
    rundir = tmp_path / "transient"
    rundir.mkdir()

    def wrap(f):
        return FaultyPager(f, fail_after=2, mode="oserror")

    try:
        spec.build(str(rundir), wrap, spec.pairs)
    except OSError:
        # The injected failure surfaced mid-workload; rebuild cleanly.
        for name in os.listdir(rundir):
            os.unlink(os.path.join(rundir, name))
        spec.build(str(rundir), None, spec.pairs)
    spec.verify(str(rundir), spec.pairs)
