"""Deterministic soak tests: long mixed workloads across reopen cycles.

These are the "leave it running" tests: thousands of interleaved
operations with periodic close/reopen, verified against a model at every
checkpoint plus a structural fsck at the end.  Seeded, so failures
reproduce.
"""

import random

import pytest

from repro.access.btree import BTree
from repro.access.btree.check import verify_btree_file
from repro.core.check import verify_file
from repro.core.table import HashTable


class TestHashSoak:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_mixed_workload_with_reopens(self, tmp_path, seed):
        rng = random.Random(seed)
        path = tmp_path / f"soak{seed}.db"
        model: dict[bytes, bytes] = {}
        t = HashTable.create(path, bsize=128, ffactor=4, cachesize=2048)
        try:
            for step in range(4000):
                r = rng.random()
                key = f"key-{rng.randrange(600)}".encode()
                if r < 0.45:
                    # occasional big values exercise the overflow chains
                    size = rng.randrange(2000) if rng.random() < 0.05 else rng.randrange(60)
                    value = bytes(rng.randrange(256) for _ in range(size))
                    t.put(key, value)
                    model[key] = value
                elif r < 0.7:
                    assert t.delete(key) == (key in model)
                    model.pop(key, None)
                elif r < 0.95:
                    assert t.get(key) == model.get(key)
                else:
                    # reopen cycle
                    t.close()
                    t = HashTable.open_file(path, cachesize=2048)
                if step % 1000 == 999:
                    assert len(t) == len(model)
                    t.check_invariants()
            assert dict(t.items()) == model
        finally:
            t.close()
        report = verify_file(path)
        assert report.ok, report.render()


class TestBtreeSoak:
    def test_mixed_workload_with_reopens(self, tmp_path):
        rng = random.Random(42)
        path = tmp_path / "soak.bt"
        model: dict[bytes, bytes] = {}
        t = BTree.create(path, bsize=512, cachesize=4096)
        try:
            for step in range(4000):
                r = rng.random()
                key = f"key-{rng.randrange(600):04d}".encode()
                if r < 0.45:
                    size = rng.randrange(3000) if rng.random() < 0.05 else rng.randrange(60)
                    value = bytes(rng.randrange(256) for _ in range(size))
                    t.put(key, value)
                    model[key] = value
                elif r < 0.7:
                    assert t.delete(key) == (0 if key in model else 1)
                    model.pop(key, None)
                elif r < 0.95:
                    assert t.get(key) == model.get(key)
                else:
                    t.close()
                    t = BTree.open_file(path, cachesize=4096)
                if step % 1000 == 999:
                    assert len(t) == len(model)
                    t.check_invariants()
            assert list(t.items()) == sorted(model.items())
        finally:
            t.close()
        report = verify_btree_file(path)
        assert report.ok, report.render()


# -- multi-threaded soak (opt-in: pass --run-soak) ---------------------------
#
# Free-running threads against one concurrent handle for tens of
# thousands of operations.  No model (interleaving is nondeterministic);
# the bar is structural: invariants hold at checkpoints, the final fsck
# is clean, and every surviving value is bytes some thread wrote.


def _soak_threads(worker, nthreads):
    import threading

    errors = []

    def guarded(t):
        try:
            worker(t)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((t, repr(exc)))

    threads = [
        threading.Thread(target=guarded, args=(t,), daemon=True)
        for t in range(nthreads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=300)
        assert not th.is_alive(), "soak worker wedged"
    assert not errors, errors


@pytest.mark.soak
class TestConcurrentHashSoak:
    NTHREADS = 4
    STEPS = 8000

    def test_threads_hammer_one_handle(self, tmp_path):
        path = tmp_path / "csoak.db"
        t = HashTable.create(
            path, bsize=128, ffactor=4, cachesize=2048, concurrent=True
        )

        def worker(tid):
            rng = random.Random(100 + tid)
            for step in range(self.STEPS):
                r = rng.random()
                key = f"key-{rng.randrange(600)}".encode()
                if r < 0.5:
                    size = rng.randrange(2000) if rng.random() < 0.05 else rng.randrange(60)
                    t.put(key, b"%d:" % tid + bytes(size))
                elif r < 0.75:
                    t.delete(key)
                else:
                    got = t.get(key)
                    assert got is None or got[:2].rstrip(b":").isdigit()
                if step % 2000 == 1999:
                    t.check_invariants()

        try:
            _soak_threads(worker, self.NTHREADS)
            t.check_invariants()
            for _k, v in t.items():
                assert v[:2].rstrip(b":").isdigit(), v
        finally:
            t.close()
        report = verify_file(path)
        assert report.ok, report.render()


@pytest.mark.soak
class TestConcurrentBtreeSoak:
    NTHREADS = 4
    STEPS = 6000

    def test_threads_hammer_one_handle(self, tmp_path):
        path = tmp_path / "csoak.bt"
        t = BTree.create(path, bsize=512, cachesize=4096, concurrent=True)

        def worker(tid):
            rng = random.Random(200 + tid)
            for step in range(self.STEPS):
                r = rng.random()
                key = f"key-{rng.randrange(600):04d}".encode()
                if r < 0.5:
                    size = rng.randrange(3000) if rng.random() < 0.05 else rng.randrange(60)
                    t.put(key, b"%d:" % tid + bytes(size))
                elif r < 0.75:
                    t.delete(key)
                else:
                    got = t.get(key)
                    assert got is None or got[:2].rstrip(b":").isdigit()
                if step % 2000 == 1999:
                    t.check_invariants()

        try:
            _soak_threads(worker, self.NTHREADS)
            t.check_invariants()
            for _k, v in t.items():
                assert v[:2].rstrip(b":").isdigit(), v
        finally:
            t.close()
        report = verify_btree_file(path)
        assert report.ok, report.render()
