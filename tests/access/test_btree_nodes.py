"""Unit tests for the btree node page layout."""

import pytest

from repro.access.btree.nodes import (
    NODE_HDR_SIZE,
    T_INTERNAL,
    T_LEAF,
    NodeView,
)


def make_leaf(bsize=512):
    view = NodeView(bytearray(bsize))
    view.initialize(T_LEAF)
    return view


def make_internal(bsize=512):
    view = NodeView(bytearray(bsize))
    view.initialize(T_INTERNAL)
    return view


class TestHeader:
    def test_initialize(self):
        view = make_leaf()
        assert view.type == T_LEAF
        assert view.nslots == 0
        assert view.data_off == 512
        assert view.next == 0
        assert view.prev == 0
        assert view.free_space == 512 - NODE_HDR_SIZE

    def test_link_fields(self):
        view = make_leaf()
        view.next = 42
        view.prev = 17
        assert view.next == 42
        assert view.prev == 17


class TestLeafEntries:
    def test_insert_sorted_and_read(self):
        view = make_leaf()
        for i, key in enumerate([b"bb", b"dd", b"ff"]):
            view._insert_entry(i, NodeView.pack_leaf_entry(key, b"v" + key))
        # splice into the middle
        slot, exact = view.leaf_search(b"cc")
        assert (slot, exact) == (1, False)
        view._insert_entry(slot, NodeView.pack_leaf_entry(b"cc", b"vcc"))
        keys = [view.leaf_key(i) for i in range(view.nslots)]
        assert keys == [b"bb", b"cc", b"dd", b"ff"]
        k, payload, big = view.leaf_entry(1)
        assert (k, payload, big) == (b"cc", b"vcc", False)

    def test_search_exact_and_missing(self):
        view = make_leaf()
        for i, key in enumerate([b"a", b"c", b"e"]):
            view._insert_entry(i, NodeView.pack_leaf_entry(key, b""))
        assert view.leaf_search(b"c") == (1, True)
        assert view.leaf_search(b"b") == (1, False)
        assert view.leaf_search(b"z") == (3, False)
        assert view.leaf_search(b"") == (0, False)

    def test_big_entry(self):
        view = make_leaf()
        view._insert_entry(0, NodeView.pack_big_leaf_entry(b"key", 99, 100000))
        k, payload, big = view.leaf_entry(0)
        assert big
        assert NodeView.unpack_big_ref(payload) == (99, 100000)
        assert view.leaf_entry_len(0) == 4 + 3 + 8

    def test_delete_compacts(self):
        view = make_leaf()
        for i, key in enumerate([b"a", b"b", b"c"]):
            view._insert_entry(i, NodeView.pack_leaf_entry(key, b"data" + key))
        free_before = view.free_space
        view.delete_slot(1, view.leaf_entry_len(1))
        assert view.nslots == 2
        assert [view.leaf_key(i) for i in range(2)] == [b"a", b"c"]
        assert view.leaf_entry(1) == (b"c", b"datac", False)
        assert view.free_space == free_before + 2 + 4 + 1 + 5

    def test_fits(self):
        view = make_leaf(128)
        entry = NodeView.pack_leaf_entry(b"k" * 10, b"v" * 50)
        assert view.fits(len(entry))
        view._insert_entry(0, entry)
        assert not view.fits(len(entry))
        with pytest.raises(ValueError):
            view._insert_entry(1, entry)


class TestInternalEntries:
    def test_minus_infinity_search(self):
        view = make_internal()
        view._insert_entry(0, NodeView.pack_int_entry(b"", 10))
        view._insert_entry(1, NodeView.pack_int_entry(b"m", 20))
        view._insert_entry(2, NodeView.pack_int_entry(b"t", 30))
        assert view.int_search(b"a") == 0
        assert view.int_search(b"m") == 1
        assert view.int_search(b"n") == 1
        assert view.int_search(b"z") == 2
        assert view.int_entry(view.int_search(b"n")) == (b"m", 20)

    def test_set_child(self):
        view = make_internal()
        view._insert_entry(0, NodeView.pack_int_entry(b"", 10))
        view.set_int_child(0, 77)
        assert view.int_entry(0) == (b"", 77)

    def test_entry_len(self):
        view = make_internal()
        view._insert_entry(0, NodeView.pack_int_entry(b"abc", 1))
        assert view.int_entry_len(0) == 6 + 3


class TestSlotBounds:
    def test_out_of_range(self):
        view = make_leaf()
        with pytest.raises(IndexError):
            view.leaf_key(0)
        with pytest.raises(IndexError):
            view._insert_entry(1, b"xx")
