"""Mapping facade + unified repro.open: dict-style access works the same
on every access method, with str keys/values UTF-8 encoded and recno
additionally accepting plain ints as record numbers."""

from __future__ import annotations

import pytest

import repro
from repro.access.db import db_open
from repro.access.recno.recno import encode_recno


@pytest.fixture(params=["hash", "btree"])
def kv_db(request):
    db = db_open(None, request.param, "c")
    yield db
    db.close()


class TestMappingFacade:
    def test_round_trip_bytes_and_str(self, kv_db):
        kv_db[b"k"] = b"v"
        assert kv_db[b"k"] == b"v"
        kv_db["clé"] = "valüe"
        assert kv_db["clé"] == "valüe".encode("utf-8")
        assert kv_db[b"cl\xc3\xa9"] == "valüe".encode("utf-8")

    def test_contains_len_del(self, kv_db):
        kv_db[b"a"] = b"1"
        kv_db[b"b"] = b"2"
        assert b"a" in kv_db and "a" in kv_db
        assert len(kv_db) == 2
        del kv_db[b"a"]
        assert b"a" not in kv_db
        assert len(kv_db) == 1

    def test_missing_key_raises(self, kv_db):
        with pytest.raises(KeyError):
            kv_db[b"nope"]
        with pytest.raises(KeyError):
            del kv_db[b"nope"]

    def test_get_default(self, kv_db):
        assert kv_db.get_default(b"nope") is None
        assert kv_db.get_default(b"nope", b"d") == b"d"
        kv_db[b"k"] = b"v"
        assert kv_db.get_default(b"k", b"d") == b"v"

    def test_pop(self, kv_db):
        kv_db[b"k"] = b"v"
        assert kv_db.pop(b"k") == b"v"
        assert kv_db.pop(b"k", b"gone") == b"gone"
        with pytest.raises(KeyError):
            kv_db.pop(b"k")

    def test_setdefault(self, kv_db):
        assert kv_db.setdefault(b"k", b"v") == b"v"
        assert kv_db.setdefault(b"k", b"other") == b"v"

    def test_update_and_iter(self, kv_db):
        kv_db.update({b"a": b"1", "b": "2"})
        kv_db.update([(b"c", b"3")], d=b"4")
        assert sorted(kv_db) == [b"a", b"b", b"c", b"d"]
        assert sorted(kv_db.items())[0] == (b"a", b"1")
        assert sorted(kv_db.keys()) == sorted(kv_db)
        assert sorted(kv_db.values()) == [b"1", b"2", b"3", b"4"]


class TestRecnoMapping:
    def test_int_keys_are_record_numbers(self):
        db = db_open(None, "recno", "c")
        try:
            db[1] = b"first"
            db[2] = "second"
            assert db[1] == b"first"
            assert db[2] == b"second"
            assert db[encode_recno(2)] == b"second"
            assert 1 in db
            assert len(db) == 2
            del db[1]
            assert db[1] == b"second"  # recno renumbers on delete
        finally:
            db.close()


class TestUnifiedOpen:
    def test_default_is_hash(self, tmp_path):
        with repro.open(tmp_path / "h.db") as db:
            assert db.type == "hash"
            db[b"k"] = b"v"
        with repro.open(tmp_path / "h.db", "r") as db:
            assert db[b"k"] == b"v"

    @pytest.mark.parametrize("type_", ["btree", "recno"])
    def test_type_selects_method(self, tmp_path, type_):
        with repro.open(tmp_path / "x.db", type=type_) as db:
            assert db.type == type_
            assert db.stat()["type"] == type_

    def test_params_forwarded(self, tmp_path):
        with repro.open(tmp_path / "h.db", bsize=1024, ffactor=32) as db:
            assert db.stat()["method"]["bsize"] == 1024
            assert db.stat()["method"]["ffactor"] == 32

    def test_in_memory(self):
        with repro.open() as db:
            db[b"k"] = b"v"
            assert db[b"k"] == b"v"

    def test_bad_type_rejected(self):
        with pytest.raises(repro.InvalidParameterError):
            repro.open(None, type="isam")
