"""Tests for the btree verifier, including corruption injection."""

import struct

import pytest

from repro.access.btree import BTree
from repro.access.btree.check import verify_btree, verify_btree_file
from repro.access.btree.nodes import NODE_HDR_SIZE


def build_tree(path, n=1500, bsize=512):
    t = BTree.create(path, bsize=bsize)
    for i in range(n):
        t.put(f"key-{i:05d}".encode(), f"value-{i}".encode())
    t.put(b"big-item", b"B" * 5000)
    t.close()
    return path


class TestCleanTrees:
    def test_fresh_tree(self, tmp_path):
        p = tmp_path / "t.bt"
        BTree.create(p).close()
        report = verify_btree_file(p)
        assert report.ok, report.render()
        assert report.stats["nkeys"] == 0
        assert report.stats["leaves"] == 1

    def test_populated_tree(self, tmp_path):
        p = build_tree(tmp_path / "t.bt")
        report = verify_btree_file(p)
        assert report.ok, report.render()
        assert report.stats["nkeys"] == 1501
        assert report.stats["internals"] >= 1
        assert report.stats["overflow"] > 0

    def test_tree_with_free_pages(self, tmp_path):
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        t.put(b"gone", b"X" * 20_000)
        t.delete(b"gone")
        t.put(b"kept", b"v")
        t.close()
        report = verify_btree_file(p)
        assert report.ok, report.render()
        assert report.stats["free"] > 0

    def test_no_orphans_after_churn(self, tmp_path):
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        for i in range(800):
            t.put(f"k{i:04d}".encode(), bytes([i % 251]) * (i % 600))
        for i in range(0, 800, 2):
            t.delete(f"k{i:04d}".encode())
        t.close()
        report = verify_btree_file(p)
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    def test_in_memory_tree(self):
        t = BTree.create(None, in_memory=True)
        for i in range(100):
            t.put(f"k{i}".encode(), b"v")
        report = verify_btree(t)
        assert report.ok
        t.close()


def corrupt(path, offset, data):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(data)


class TestCorruptionDetected:
    def test_wrong_nkeys(self, tmp_path):
        p = build_tree(tmp_path / "t.bt")
        # meta nkeys is a u64 at offset 24
        corrupt(p, 24, struct.pack(">Q", 42))
        report = verify_btree_file(p)
        assert not report.ok
        assert any("nkeys" in e for e in report.errors)

    def test_unsorted_leaf(self, tmp_path):
        """Swap two slot offsets inside a leaf: order violation caught."""
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        for i in range(5):
            t.put(f"k{i}".encode(), b"v")
        leaf_pgno = t._leftmost_leaf()
        t.close()
        off = leaf_pgno * 512 + NODE_HDR_SIZE
        with open(p, "r+b") as fh:
            fh.seek(off)
            raw = fh.read(4)
            fh.seek(off)
            fh.write(raw[2:4] + raw[0:2])  # swap slots 0 and 1
        report = verify_btree_file(p)
        assert not report.ok
        assert any("order" in e for e in report.errors)

    def test_smashed_node_type(self, tmp_path):
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        for i in range(600):
            t.put(f"k{i:04d}".encode(), b"v" * 20)
        leaf_pgno = t._leftmost_leaf()
        t.close()
        corrupt(p, leaf_pgno * 512, b"\x07")  # invalid type byte
        report = verify_btree_file(p)
        assert not report.ok

    def test_truncated_big_chain(self, tmp_path):
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        t.put(b"big", b"Z" * 3000)
        # find the first overflow page and break its chain link + length
        from repro.access.btree.nodes import NodeView, T_OVERFLOW

        ovfl_pgno = next(
            pg
            for pg in range(1, t.npages)
            if NodeView(t.pool.get(pg).page).type == T_OVERFLOW
        )
        t.close()
        # zero its next pointer and shrink its used count
        corrupt(p, ovfl_pgno * 512 + 2, struct.pack(">H", 10))  # nslots/used
        corrupt(p, ovfl_pgno * 512 + 8, struct.pack(">I", 0))  # next
        report = verify_btree_file(p)
        assert not report.ok
        assert any("short" in e or "overflow" in e for e in report.errors)

    def test_orphan_page_warns(self, tmp_path):
        p = tmp_path / "t.bt"
        t = BTree.create(p, bsize=512)
        t.put(b"k", b"v")
        # allocate a page and leak it (not in tree, not on free list)
        hdr = t._new_page(3)  # T_OVERFLOW
        assert hdr is not None
        t.close()
        report = verify_btree_file(p)
        assert any("orphan" in w for w in report.warnings)
