"""Tests for the btree access method."""

import random

import pytest

from repro.access.api import R_CURSOR, R_FIRST, R_LAST, R_NEXT, R_NOOVERWRITE, R_PREV
from repro.access.btree import BTree
from repro.core.errors import (
    BadFileError,
    ClosedError,
    InvalidParameterError,
    ReadOnlyError,
)


@pytest.fixture
def tree():
    t = BTree.create(None, bsize=512, in_memory=True)
    yield t
    if not t.closed:
        t.close()


class TestBasics:
    def test_put_get(self, tree):
        assert tree.put(b"k", b"v") == 0
        assert tree.get(b"k") == b"v"
        assert tree.get(b"missing") is None

    def test_replace(self, tree):
        tree.put(b"k", b"old")
        tree.put(b"k", b"new longer value")
        assert tree.get(b"k") == b"new longer value"
        assert len(tree) == 1

    def test_nooverwrite(self, tree):
        tree.put(b"k", b"v")
        assert tree.put(b"k", b"other", replace=False) == 1
        assert tree.get(b"k") == b"v"

    def test_delete(self, tree):
        tree.put(b"k", b"v")
        assert tree.delete(b"k") == 0
        assert tree.delete(b"k") == 1
        assert tree.get(b"k") is None
        assert len(tree) == 0

    def test_empty_key_and_value(self, tree):
        tree.put(b"", b"")
        assert tree.get(b"") == b""
        tree.put(b"", b"x")
        assert tree.get(b"") == b"x"

    def test_oversized_key_rejected(self, tree):
        with pytest.raises(InvalidParameterError, match="key"):
            tree.put(b"K" * 1000, b"v")  # > quarter of a 512-byte page

    def test_type_checks(self, tree):
        with pytest.raises(TypeError):
            tree.put("str", b"v")


class TestSortedOrder:
    def test_iteration_is_sorted(self, tree):
        rng = random.Random(7)
        keys = {f"{rng.randrange(10**6):06d}".encode() for _ in range(2000)}
        for k in keys:
            tree.put(k, k[::-1])
        assert [k for k, _v in tree.items()] == sorted(keys)
        tree.check_invariants()

    def test_reverse_scan_mirrors_forward(self, tree):
        for i in range(500):
            tree.put(f"k{i:05d}".encode(), b"v")
        fwd = [k for k, _v in tree.items()]
        rev = []
        rec = tree.seq(R_LAST)
        while rec is not None:
            rev.append(rec[0])
            rec = tree.seq(R_PREV)
        assert rev == fwd[::-1]

    def test_cursor_positions_at_or_after(self, tree):
        for k in (b"b", b"d", b"f"):
            tree.put(k, b"v")
        assert tree.seq(R_CURSOR, key=b"c")[0] == b"d"
        assert tree.seq(R_CURSOR, key=b"d")[0] == b"d"
        assert tree.seq(R_CURSOR, key=b"g") is None
        assert tree.seq(R_CURSOR, key=b"")[0] == b"b"

    def test_cursor_then_next(self, tree):
        for k in (b"a", b"b", b"c"):
            tree.put(k, b"v")
        assert tree.seq(R_CURSOR, key=b"b")[0] == b"b"
        assert tree.seq(R_NEXT)[0] == b"c"
        assert tree.seq(R_NEXT) is None

    def test_range_scan_use_case(self, tree):
        """The thing hash cannot do: ordered range queries."""
        for i in range(100):
            tree.put(f"user:{i:04d}".encode(), str(i).encode())
        got = []
        rec = tree.seq(R_CURSOR, key=b"user:0020")
        while rec is not None and rec[0] < b"user:0030":
            got.append(rec[0])
            rec = tree.seq(R_NEXT)
        assert got == [f"user:{i:04d}".encode() for i in range(20, 30)]

    def test_seq_flags_validated(self, tree):
        with pytest.raises(ValueError):
            tree.seq(99)
        with pytest.raises(ValueError):
            tree.seq(R_CURSOR)  # needs a key

    def test_empty_tree_seq(self, tree):
        assert tree.seq(R_FIRST) is None
        assert tree.seq(R_LAST) is None
        assert tree.seq(R_NEXT) is None


class TestSplitting:
    def test_many_keys_many_levels(self):
        t = BTree.create(None, bsize=512, in_memory=True)
        n = 3000
        for i in range(n):
            t.put(f"key-{i:06d}".encode(), f"value-{i}".encode())
        assert len(t) == n
        for i in range(0, n, 97):
            assert t.get(f"key-{i:06d}".encode()) == f"value-{i}".encode()
        t.check_invariants()
        assert t.npages > 50  # really multi-level
        t.close()

    def test_ascending_and_descending_inserts(self):
        for order in (range(1000), reversed(range(1000))):
            t = BTree.create(None, bsize=512, in_memory=True)
            for i in order:
                t.put(f"{i:05d}".encode(), b"v")
            assert [k for k, _v in t.items()] == [
                f"{i:05d}".encode() for i in range(1000)
            ]
            t.check_invariants()
            t.close()

    def test_large_entries_force_splits(self, tree):
        for i in range(60):
            tree.put(f"k{i:03d}".encode(), b"D" * 100)
        assert len(tree) == 60
        tree.check_invariants()


class TestBigData:
    def test_data_larger_than_page(self, tree):
        tree.put(b"big", b"X" * 5000)
        assert tree.get(b"big") == b"X" * 5000

    def test_very_large_data(self, tree):
        blob = bytes(i % 251 for i in range(200_000))
        tree.put(b"blob", blob)
        assert tree.get(b"blob") == blob

    def test_big_replace_frees_chain(self, tree):
        tree.put(b"k", b"A" * 10_000)
        pages = tree.npages
        tree.put(b"k", b"B" * 10_000)  # chain freed and reallocated
        assert tree.npages <= pages + 2
        assert tree.get(b"k") == b"B" * 10_000

    def test_big_delete_frees_pages_for_reuse(self, tree):
        tree.put(b"k", b"A" * 20_000)
        pages = tree.npages
        tree.delete(b"k")
        tree.put(b"j", b"B" * 20_000)
        assert tree.npages <= pages + 2

    def test_big_data_in_scan(self, tree):
        tree.put(b"a", b"small")
        tree.put(b"b", b"L" * 3000)
        tree.put(b"c", b"small2")
        assert dict(tree.items()) == {
            b"a": b"small",
            b"b": b"L" * 3000,
            b"c": b"small2",
        }


class TestPersistence:
    def test_reopen(self, tmp_path):
        p = tmp_path / "t.bt"
        data = {f"key-{i}".encode(): f"val-{i}".encode() * 3 for i in range(1500)}
        with BTree.create(p, bsize=1024) as t:
            for k, v in data.items():
                t.put(k, v)
        with BTree.open_file(p) as t:
            assert len(t) == len(data)
            for k, v in data.items():
                assert t.get(k) == v
            assert [k for k, _v in t.items()] == sorted(data)
            t.check_invariants()

    def test_reopen_with_big_data_and_freelist(self, tmp_path):
        p = tmp_path / "t.bt"
        with BTree.create(p, bsize=512) as t:
            t.put(b"big", b"Z" * 30_000)
            t.put(b"gone", b"Y" * 10_000)
            t.delete(b"gone")
        with BTree.open_file(p) as t:
            assert t.get(b"big") == b"Z" * 30_000
            assert t.get(b"gone") is None
            # the freed chain is reusable after reopen
            pages = t.npages
            t.put(b"new", b"W" * 8_000)
            assert t.npages <= pages + 1

    def test_readonly(self, tmp_path):
        p = tmp_path / "t.bt"
        with BTree.create(p) as t:
            t.put(b"k", b"v")
        r = BTree.open_file(p, readonly=True)
        assert r.get(b"k") == b"v"
        with pytest.raises(ReadOnlyError):
            r.put(b"x", b"y")
        r.close()

    def test_bad_file(self, tmp_path):
        p = tmp_path / "junk"
        p.write_bytes(b"not a btree" * 100)
        with pytest.raises(BadFileError):
            BTree.open_file(p)

    def test_closed_rejects(self, tmp_path):
        t = BTree.create(tmp_path / "t.bt")
        t.close()
        with pytest.raises(ClosedError):
            t.get(b"k")
        t.close()  # idempotent

    def test_bad_bsize(self):
        with pytest.raises(InvalidParameterError):
            BTree.create(None, bsize=100, in_memory=True)


class TestChurn:
    def test_interleaved_insert_delete(self, tree):
        rng = random.Random(11)
        model = {}
        for _round in range(2000):
            op = rng.random()
            key = f"{rng.randrange(300):04d}".encode()
            if op < 0.5:
                val = bytes(rng.randrange(97, 123) for _ in range(rng.randrange(40)))
                tree.put(key, val)
                model[key] = val
            elif op < 0.8:
                assert tree.delete(key) == (0 if key in model else 1)
                model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        assert dict(tree.items()) == dict(sorted(model.items()))
        tree.check_invariants()
