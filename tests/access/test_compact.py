"""``compact()`` across every access method: online rewrite into minimal
form, uniform report shape, correctness of the surviving data, and the
hash method's pristine-image guarantee (size and lookup I/O match a fresh
``bulk_load`` of the survivors)."""

from __future__ import annotations

import os

import pytest

import repro
from repro.access.db import db_open
from repro.access.recno.recno import encode_recno
from repro.core.errors import TransactionError
from repro.core.table import HashTable

N = 1500
DEL = 1350


def _key(type_: str, i: int) -> bytes:
    return encode_recno(i + 1) if type_ == "recno" else f"k{i:05d}".encode()


def _churn(db, type_: str):
    for i in range(N):
        db.put(_key(type_, i), f"value-{i:05d}".encode() * 3)
    if type_ == "recno":
        # recno renumbers on delete: deleting record 1 repeatedly shifts
        # the file down -- survivors are the last N-DEL records
        for _ in range(DEL):
            db.delete(encode_recno(1))
    else:
        for i in range(DEL):
            db.delete(_key(type_, i))


class TestUniform:
    @pytest.mark.parametrize("type_", ["hash", "btree", "recno"])
    def test_report_shape_and_data_survival(self, tmp_path, type_):
        db = db_open(tmp_path / "c.db", type_, "c")
        try:
            _churn(db, type_)
            survivors = dict(db.items())
            report = db.compact()
            assert set(report) >= {
                "nkeys", "before", "after", "pages_reclaimed", "pagesize",
            }
            assert report["nkeys"] == len(db) == N - DEL
            assert report["after"]["pages"] <= report["before"]["pages"]
            assert report["pages_reclaimed"] >= 0
            assert dict(db.items()) == survivors
        finally:
            db.close()

    @pytest.mark.parametrize("type_", ["hash", "btree", "recno"])
    def test_reclaims_churn_and_persists(self, tmp_path, type_):
        path = tmp_path / "c.db"
        db = db_open(path, type_, "c")
        db.sync()
        _churn(db, type_)
        db.sync()
        churned = os.path.getsize(path)
        report = db.compact()
        assert report["pages_reclaimed"] > 0
        survivors = dict(db.items())
        db.close()
        assert os.path.getsize(path) < churned
        db = db_open(path, type_, "w")
        try:
            assert dict(db.items()) == survivors
        finally:
            db.close()

    @pytest.mark.parametrize("type_", ["hash", "btree", "recno"])
    def test_wal_mode_and_txn_guard(self, tmp_path, type_):
        path = tmp_path / "w.db"
        db = repro.open(path, type=type_, durability="wal")
        try:
            for i in range(300):
                db.put(_key(type_, i), b"x" * 30)
            for i in range(280):
                db.delete(
                    encode_recno(1) if type_ == "recno" else _key(type_, i)
                )
            db.begin()
            with pytest.raises(TransactionError):
                db.compact()
            db.abort()
            report = db.compact()
            assert report["nkeys"] == 20
            survivors = dict(db.items())
        finally:
            db.close()
        db = repro.open(path, type=type_, durability="wal")
        try:
            assert dict(db.items()) == survivors
        finally:
            db.close()

    @pytest.mark.parametrize("type_", ["hash", "btree"])
    def test_in_memory(self, type_):
        db = db_open(None, type_, "c")
        try:
            _churn(db, type_)
            report = db.compact()
            assert report["nkeys"] == N - DEL
            assert len(db) == N - DEL
        finally:
            db.close()

    def test_compact_idempotent(self, tmp_path):
        db = db_open(tmp_path / "i.db", "hash", "c")
        try:
            _churn(db, "hash")
            first = db.compact()
            second = db.compact()
            assert second["before"]["pages"] == first["after"]["pages"]
            assert second["pages_reclaimed"] == 0
        finally:
            db.close()


class TestHashPristine:
    """The hash guarantee: post-compact file matches a fresh presized
    bulk_load of the survivors -- in size AND lookup page reads."""

    @pytest.fixture()
    def pair_of_tables(self, tmp_path):
        churned_path = tmp_path / "churned.db"
        pristine_path = tmp_path / "pristine.db"
        t = HashTable.create(churned_path, bsize=512)
        for i in range(N):
            t.put(_key("hash", i), b"v" * 40)
        for i in range(DEL):
            t.delete(_key("hash", i))
        survivors = [(k, v) for k, v in t._iter_items()]
        t.compact()
        t.close()
        p = HashTable.create(pristine_path, bsize=512)
        p.bulk_load(survivors, nelem=len(survivors))
        p.close()
        return churned_path, pristine_path, survivors

    def test_size_within_gate(self, pair_of_tables):
        churned, pristine, _ = pair_of_tables
        assert os.path.getsize(churned) <= 1.25 * os.path.getsize(pristine)

    def test_lookup_page_reads_match(self, pair_of_tables):
        churned, pristine, survivors = pair_of_tables
        reads = {}
        for name, path in (("compacted", churned), ("pristine", pristine)):
            t = HashTable.open_file(path, readonly=True)
            try:
                for k, v in survivors:
                    assert t.get(k) == v
                reads[name] = t.io_stats.page_reads
            finally:
                t.close()
        assert reads["compacted"] == reads["pristine"]

    def test_check_clean_after_compact(self, pair_of_tables):
        from repro.core.check import verify_file

        churned, _, _ = pair_of_tables
        report = verify_file(churned)
        assert report.ok, report.render()
        assert not report.warnings, report.warnings


class TestCLI:
    def test_compact_subcommand(self, tmp_path, capsys):
        from repro.tools.__main__ import main

        path = tmp_path / "cli.db"
        db = db_open(path, "hash", "c")
        _churn(db, "hash")
        db.sync()
        before = os.path.getsize(path)
        db.close()
        assert main(["compact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "reclaimed" in out
        assert os.path.getsize(path) < before

    def test_stat_space_flag(self, tmp_path, capsys):
        from repro.tools.__main__ import main

        path = tmp_path / "cli.db"
        db = db_open(path, "hash", "c")
        _churn(db, "hash")
        db.close()
        assert main(["stat", "--space", str(path)]) == 0
        out = capsys.readouterr().out
        for field in (
            "file_pages", "freelist_pages", "overflow_allocated",
            "fill_factor", "fragmentation_pct",
        ):
            assert field in out

    def test_stat_space_btree(self, tmp_path, capsys):
        from repro.tools.__main__ import main

        path = tmp_path / "cli.db"
        db = db_open(path, "btree", "c")
        for i in range(200):
            db.put(_key("btree", i), b"v" * 30)
        db.close()
        assert main(["stat", "--space", str(path)]) == 0
        out = capsys.readouterr().out
        assert "file_pages" in out and "free_pages" in out
