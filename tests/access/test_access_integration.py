"""Integration: access methods on the paper's workloads."""

import pytest

from repro.access import DB_BTREE, DB_HASH, DB_RECNO, R_CURSOR, R_NEXT, db_open
from repro.access.btree import BTree
from repro.workloads import dictionary_pairs, passwd_accounts


class TestBtreeOnDictionary:
    def test_dictionary_is_a_sorted_index(self, tmp_path):
        pairs = dict(dictionary_pairs(2000))
        p = tmp_path / "dict.bt"
        with BTree.create(p, bsize=1024) as t:
            for k, v in pairs.items():
                t.put(k, v)
        with BTree.open_file(p, readonly=True) as t:
            assert len(t) == len(pairs)
            # prefix range query: every word starting with "st"
            expected = sorted(k for k in pairs if k.startswith(b"st"))
            got = []
            rec = t.seq(R_CURSOR, key=b"st")
            while rec is not None and rec[0].startswith(b"st"):
                got.append(rec[0])
                rec = t.seq(R_NEXT)
            assert got == expected
            assert len(got) > 0

    def test_btree_and_hash_hold_identical_data(self, tmp_path):
        pairs = dict(dictionary_pairs(1500))
        bt = db_open(tmp_path / "x.bt", DB_BTREE)
        hs = db_open(tmp_path / "x.h", DB_HASH)
        for k, v in pairs.items():
            bt.put(k, v)
            hs.put(k, v)
        assert dict(bt.items()) == dict(hs.items()) == pairs
        bt.close()
        hs.close()


class TestRecnoAsTextFile:
    def test_passwd_file_by_line_number(self, tmp_path):
        """recno's motivating use: vi-style line addressing of a system
        file."""
        entries = [entry.encode() for _n, _u, entry in passwd_accounts(100)]
        p = tmp_path / "passwd.rec"
        with db_open(p, DB_RECNO, "n") as db:
            for line in entries:
                db.append(line)
        with db_open(p, DB_RECNO, "w") as db:
            assert len(db) == 100
            assert db.get_rec(1) == entries[0]
            assert db.get_rec(100) == entries[99]
            # delete line 50; line 51 becomes line 50
            db.delete_rec(50)
            assert db.get_rec(50) == entries[50]
            assert len(db) == 99


class TestTinyCacheAccessMethods:
    @pytest.mark.parametrize("bsize", [512, 4096])
    def test_btree_correct_under_eviction_pressure(self, bsize):
        t = BTree.create(None, bsize=bsize, cachesize=0, in_memory=True)
        data = {f"key-{i:05d}".encode(): f"val-{i}".encode() * 2 for i in range(800)}
        for k, v in data.items():
            t.put(k, v)
        for k, v in data.items():
            assert t.get(k) == v
        t.check_invariants()
        t.close()

    def test_btree_big_data_under_eviction_pressure(self):
        t = BTree.create(None, bsize=512, cachesize=0, in_memory=True)
        for i in range(20):
            t.put(f"k{i:02d}".encode(), bytes([i]) * 5000)
        for i in range(20):
            assert t.get(f"k{i:02d}".encode()) == bytes([i]) * 5000
        t.check_invariants()
        t.close()


class TestAccessIOAccounting:
    def test_btree_cache_eliminates_reread_io(self, tmp_path):
        p = tmp_path / "io.bt"
        t = BTree.create(p, bsize=1024, cachesize=1 << 20)
        for i in range(2000):
            t.put(f"key-{i:05d}".encode(), b"value")
        reads_before = t.io_stats.page_reads
        for i in range(2000):
            t.get(f"key-{i:05d}".encode())
        assert t.io_stats.page_reads == reads_before
        t.close()
