"""Tests for the uniform db_open interface across all three methods."""

import pytest

import repro
from repro.access import (
    DB_BTREE,
    DB_HASH,
    DB_RECNO,
    R_FIRST,
    R_LAST,
    R_NEXT,
    R_NOOVERWRITE,
    R_PREV,
    db_open,
)
from repro.access.recno.recno import encode_recno
from repro.core.errors import InvalidParameterError


class TestDispatch:
    def test_each_type_creates_right_method(self, tmp_path):
        for type_, suffix in ((DB_HASH, "h"), (DB_BTREE, "b"), (DB_RECNO, "r")):
            db = db_open(tmp_path / f"x.{suffix}", type_)
            assert db.type == type_
            db.close()

    def test_unknown_type(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            db_open(tmp_path / "x", "isam")

    def test_bad_flag(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            db_open(tmp_path / "x", DB_HASH, "z")

    def test_exported_from_top_level(self):
        assert repro.db_open is db_open

    def test_memory_databases(self):
        for type_ in (DB_HASH, DB_BTREE, DB_RECNO):
            db = db_open(None, type_)
            key = encode_recno(1) if type_ == DB_RECNO else b"k"
            db.put(key, b"v")
            assert db.get(key) == b"v"
            db.close()


class TestUniformApplicationCode:
    """The paper's promise: 'application implementations [are] largely
    independent of the database type' -- identical code on all methods."""

    def run_app(self, db, keys):
        for i, k in enumerate(keys):
            assert db.put(k, f"value-{i}".encode()) == 0
        for i, k in enumerate(keys):
            assert db.get(k) == f"value-{i}".encode()
        assert db.put(keys[0], b"x", replace=False) == 1
        assert db.delete(keys[-1]) == 0
        assert db.get(keys[-1]) is None
        scanned = list(db.items())
        assert len(scanned) == len(keys) - 1
        db.sync()

    def test_same_code_all_methods(self, tmp_path):
        byte_keys = [f"key-{i:03d}".encode() for i in range(50)]
        recno_keys = [encode_recno(i) for i in range(1, 51)]
        for type_, keys in (
            (DB_HASH, byte_keys),
            (DB_BTREE, byte_keys),
            (DB_RECNO, recno_keys),
        ):
            with db_open(tmp_path / f"app.{type_}", type_, "n") as db:
                self.run_app(db, keys)


class TestOrderingContracts:
    def test_btree_sorted_hash_unordered_recno_numeric(self, tmp_path):
        keys = [b"delta", b"alpha", b"charlie", b"bravo"]
        bt = db_open(tmp_path / "o.bt", DB_BTREE)
        hs = db_open(tmp_path / "o.h", DB_HASH)
        for k in keys:
            bt.put(k, b"v")
            hs.put(k, b"v")
        assert [k for k, _v in bt.items()] == sorted(keys)
        assert sorted(k for k, _v in hs.items()) == sorted(keys)
        bt.close()
        hs.close()

    def test_hash_rejects_backward_scan(self, tmp_path):
        with db_open(tmp_path / "h.db", DB_HASH) as db:
            db.put(b"k", b"v")
            with pytest.raises(ValueError):
                db.seq(R_PREV)
            with pytest.raises(ValueError):
                db.seq(R_LAST)

    def test_btree_supports_all_flags(self, tmp_path):
        with db_open(tmp_path / "b.db", DB_BTREE) as db:
            for k in (b"a", b"b"):
                db.put(k, b"v")
            assert db.seq(R_FIRST)[0] == b"a"
            assert db.seq(R_NEXT)[0] == b"b"
            assert db.seq(R_LAST)[0] == b"b"
            assert db.seq(R_PREV)[0] == b"a"


class TestReopenAllTypes:
    def test_flag_semantics(self, tmp_path):
        for type_ in (DB_HASH, DB_BTREE):
            p = tmp_path / f"re.{type_}"
            with db_open(p, type_, "c") as db:
                db.put(b"k", b"v")
            with db_open(p, type_, "r") as db:
                assert db.get(b"k") == b"v"
            with db_open(p, type_, "n") as db:
                assert db.get(b"k") is None  # truncated

    def test_recno_reopen(self, tmp_path):
        p = tmp_path / "re.recno"
        with db_open(p, DB_RECNO, "c") as db:
            db.append(b"one")
        with db_open(p, DB_RECNO, "w") as db:
            assert db.get_rec(1) == b"one"
