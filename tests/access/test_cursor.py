"""Tests for the first-class cursor API across all three access methods:
positioning, independence, iterator/context-manager protocol, behaviour
under concurrent mutation, and the legacy seq() shim riding on top."""

from __future__ import annotations

import pytest

from repro.access.api import R_FIRST, R_NEXT
from repro.access.db import db_open
from repro.access.recno.recno import decode_recno, encode_recno


def _filled(type_: str, n: int = 50):
    db = db_open(None, type_, "c")
    for i in range(n):
        db.put(_key(type_, i), f"val-{i:04d}".encode())
    return db


def _key(type_: str, i: int) -> bytes:
    if type_ == "recno":
        return encode_recno(i + 1)
    return f"key-{i:04d}".encode()


@pytest.fixture(params=["hash", "btree", "recno"])
def any_db(request):
    db = _filled(request.param)
    yield request.param, db
    db.close()


class TestForwardScan:
    def test_first_next_visits_everything(self, any_db):
        type_, db = any_db
        cur = db.cursor()
        seen = []
        item = cur.first()
        while item is not None:
            seen.append(item)
            item = cur.next()
        assert len(seen) == 50
        assert {k for k, _ in seen} == {_key(type_, i) for i in range(50)}
        for k, v in seen:
            assert db.get(k) == v

    def test_next_unpositioned_starts_at_first(self, any_db):
        _, db = any_db
        assert db.cursor().next() == db.cursor().first()

    def test_exhausted_cursor_stays_exhausted(self, any_db):
        _, db = any_db
        cur = db.cursor()
        while cur.next() is not None:
            pass
        assert cur.next() is None
        assert cur.next() is None

    def test_empty_database(self, any_db):
        type_, _ = any_db
        db = db_open(None, type_, "c")
        try:
            cur = db.cursor()
            assert cur.first() is None
            assert cur.next() is None
        finally:
            db.close()

    def test_iterator_protocol(self, any_db):
        _, db = any_db
        assert len(list(db.cursor())) == 50

    def test_context_manager(self, any_db):
        _, db = any_db
        with db.cursor() as cur:
            assert cur.first() is not None

    def test_cursors_are_independent(self, any_db):
        _, db = any_db
        a, b = db.cursor(), db.cursor()
        first = a.first()
        a.next()
        a.next()
        assert b.first() == first  # b's position untouched by a's walk
        assert a.next() != first


class TestOrderedCursors:
    @pytest.fixture(params=["btree", "recno"])
    def ordered_db(self, request):
        db = _filled(request.param)
        yield request.param, db
        db.close()

    def test_forward_is_sorted(self, ordered_db):
        _, db = ordered_db
        keys = [k for k, _ in db.cursor()]
        assert keys == sorted(keys)

    def test_reverse_mirrors_forward(self, ordered_db):
        _, db = ordered_db
        fwd = [k for k, _ in db.cursor()]
        cur = db.cursor()
        rev = []
        item = cur.last()
        while item is not None:
            rev.append(item[0])
            item = cur.prev()
        assert rev == list(reversed(fwd))

    def test_seek_exact_and_at_or_after(self):
        db = _filled("btree")
        try:
            cur = db.cursor()
            k, v = cur.seek(b"key-0010")
            assert k == b"key-0010"
            # between key-0010 and key-0011 -> lands on 0011
            k, _ = cur.seek(b"key-0010a")
            assert k == b"key-0011"
            assert cur.next()[0] == b"key-0012"
            assert cur.seek(b"zzz") is None
        finally:
            db.close()

    def test_seek_recno_by_record_number(self):
        db = _filled("recno")
        try:
            cur = db.cursor()
            k, v = cur.seek(encode_recno(7))
            assert decode_recno(k) == 7
            assert v == b"val-0006"
        finally:
            db.close()

    def test_btree_cursor_survives_delete_at_cursor(self):
        # the modern cursor repositions by key: deleting the pair under it
        # continues at the next key (the old seq shim restarted at FIRST)
        db = _filled("btree")
        try:
            cur = db.cursor()
            cur.first()
            k, _ = cur.next()
            assert k == b"key-0001"
            db.delete(k)
            assert cur.next()[0] == b"key-0002"
        finally:
            db.close()

    def test_btree_cursor_sees_inserts_ahead(self):
        db = _filled("btree")
        try:
            cur = db.cursor()
            cur.seek(b"key-0010")
            db.put(b"key-0010a", b"wedged")
            assert cur.next()[0] == b"key-0010a"
        finally:
            db.close()


class TestHashCursorLimits:
    def test_backward_and_seek_rejected(self):
        db = _filled("hash")
        try:
            cur = db.cursor()
            with pytest.raises(ValueError):
                cur.last()
            with pytest.raises(ValueError):
                cur.prev()
            with pytest.raises(ValueError):
                cur.seek(b"key-0001")
        finally:
            db.close()

    def test_scan_over_splitting_table(self):
        # inserting during a scan may split buckets under the cursor; the
        # loose guarantee is that the scan terminates and every pair it
        # returns is genuine (pairs may be missed or repeated)
        db = _filled("hash", n=100)
        try:
            cur = db.cursor()
            seen = []
            item = cur.first()
            extra = 0
            while item is not None:
                seen.append(item)
                if extra < 200:
                    db.put(f"extra-{extra:04d}".encode(), b"x")
                    extra += 1
                item = cur.next()
            assert len(seen) >= 100 // 2
            for k, v in seen:
                assert db.get(k) == v
        finally:
            db.close()


class TestSeqShim:
    def test_seq_matches_cursor_scan(self, any_db):
        _, db = any_db
        via_cursor = list(db.cursor())
        via_seq = []
        item = db.seq(R_FIRST)
        while item is not None:
            via_seq.append(item)
            item = db.seq(R_NEXT)
        assert via_seq == via_cursor

    def test_seq_uses_one_hidden_cursor(self, any_db):
        _, db = any_db
        first = db.seq(R_FIRST)
        second = db.seq(R_NEXT)
        assert first != second
        assert db.seq(R_FIRST) == first  # R_FIRST rewinds the same cursor
