"""Tests for the recno access method."""

import pytest

from repro.access.api import R_FIRST, R_LAST, R_NEXT, R_PREV
from repro.access.recno import Recno
from repro.access.recno.recno import decode_recno, encode_recno
from repro.core.errors import InvalidParameterError


@pytest.fixture
def rec():
    r = Recno.create(None, in_memory=True)
    yield r
    if not r.closed:
        r.close()


class TestKeyEncoding:
    def test_roundtrip(self):
        for n in (1, 2, 1000, 2**32):
            assert decode_recno(encode_recno(n)) == n

    def test_ordering_preserved(self):
        """Big-endian keys keep record order in the underlying btree."""
        assert encode_recno(9) < encode_recno(10) < encode_recno(300)

    def test_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            encode_recno(0)

    def test_bad_key_length(self):
        with pytest.raises(InvalidParameterError):
            decode_recno(b"\x01")


class TestVariableLength:
    def test_append_and_get(self, rec):
        assert rec.append(b"first") == 1
        assert rec.append(b"second") == 2
        assert rec.get_rec(1) == b"first"
        assert rec.get_rec(2) == b"second"
        assert rec.get_rec(3) is None
        assert len(rec) == 2

    def test_put_past_end_materializes_gap(self, rec):
        rec.put_rec(5, b"five")
        assert len(rec) == 5
        for i in range(1, 5):
            assert rec.get_rec(i) == b""
        assert rec.get_rec(5) == b"five"

    def test_replace(self, rec):
        rec.append(b"old")
        rec.put_rec(1, b"new")
        assert rec.get_rec(1) == b"new"
        assert len(rec) == 1

    def test_insert_renumbers(self, rec):
        for word in (b"a", b"b", b"d"):
            rec.append(word)
        rec.insert_rec(3, b"c")
        assert list(rec.records()) == [b"a", b"b", b"c", b"d"]
        assert len(rec) == 4

    def test_insert_at_front(self, rec):
        rec.append(b"second")
        rec.insert_rec(1, b"first")
        assert list(rec.records()) == [b"first", b"second"]

    def test_insert_past_end_behaves_like_put(self, rec):
        rec.insert_rec(3, b"three")
        assert len(rec) == 3
        assert rec.get_rec(3) == b"three"

    def test_delete_renumbers(self, rec):
        for word in (b"a", b"b", b"c", b"d"):
            rec.append(word)
        assert rec.delete_rec(2)
        assert list(rec.records()) == [b"a", b"c", b"d"]
        assert rec.get_rec(2) == b"c"
        assert len(rec) == 3

    def test_delete_bounds(self, rec):
        rec.append(b"only")
        assert not rec.delete_rec(0)
        assert not rec.delete_rec(2)
        assert rec.delete_rec(1)
        assert len(rec) == 0

    def test_text_file_shape(self, rec):
        """The classic recno use: line-addressable text."""
        lines = [f"line {i}".encode() for i in range(100)]
        for line in lines:
            rec.append(line)
        assert rec.get_rec(42) == b"line 41"
        rec.delete_rec(1)
        assert rec.get_rec(1) == b"line 1"
        assert len(rec) == 99


class TestFixedLength:
    def test_padding(self):
        r = Recno.create(None, reclen=8, bpad=b".", in_memory=True)
        r.append(b"abc")
        assert r.get_rec(1) == b"abc....."
        r.close()

    def test_exact_length_unpadded(self):
        r = Recno.create(None, reclen=4, in_memory=True)
        r.append(b"abcd")
        assert r.get_rec(1) == b"abcd"
        r.close()

    def test_too_long_rejected(self):
        r = Recno.create(None, reclen=4, in_memory=True)
        with pytest.raises(InvalidParameterError):
            r.append(b"abcde")
        r.close()

    def test_gap_fill_uses_pad(self):
        r = Recno.create(None, reclen=3, bpad=b"#", in_memory=True)
        r.put_rec(3, b"x")
        assert r.get_rec(1) == b"###"
        assert r.get_rec(2) == b"###"
        assert r.get_rec(3) == b"x##"
        r.close()

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            Recno.create(None, reclen=0, in_memory=True)
        with pytest.raises(InvalidParameterError):
            Recno.create(None, bpad=b"ab", in_memory=True)


class TestUniformInterface:
    def test_get_put_delete_via_bytes_keys(self, rec):
        assert rec.put(encode_recno(1), b"one") == 0
        assert rec.get(encode_recno(1)) == b"one"
        assert rec.put(encode_recno(1), b"other", replace=False) == 1
        assert rec.delete(encode_recno(1)) == 0
        assert rec.delete(encode_recno(1)) == 1

    def test_seq_scan(self, rec):
        for i in range(10):
            rec.append(f"rec{i}".encode())
        seen = []
        item = rec.seq(R_FIRST)
        while item is not None:
            seen.append(item)
            item = rec.seq(R_NEXT)
        assert [decode_recno(k) for k, _d in seen] == list(range(1, 11))
        assert seen[0][1] == b"rec0"

    def test_seq_backward(self, rec):
        for i in range(5):
            rec.append(str(i).encode())
        last = rec.seq(R_LAST)
        assert last[1] == b"4"
        assert rec.seq(R_PREV)[1] == b"3"

    def test_contains_and_items(self, rec):
        rec.append(b"x")
        assert encode_recno(1) in rec
        assert encode_recno(2) not in rec
        assert list(rec.items()) == [(encode_recno(1), b"x")]


class TestPersistence:
    def test_reopen(self, tmp_path):
        p = tmp_path / "r.rec"
        r = Recno.create(p)
        for i in range(200):
            r.append(f"record {i}".encode())
        r.close()
        r = Recno.open_file(p)
        assert len(r) == 200
        assert r.get_rec(100) == b"record 99"
        r.close()

    def test_fixed_length_reopen(self, tmp_path):
        p = tmp_path / "f.rec"
        r = Recno.create(p, reclen=16)
        r.append(b"short")
        r.close()
        r = Recno.open_file(p, reclen=16)
        assert r.get_rec(1) == b"short" + b"\0" * 11
        r.close()
