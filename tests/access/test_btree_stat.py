"""Tests for btree statistics."""

from repro.access.btree import BTree
from repro.access.btree.stat import collect_btree_stats, format_btree_stats
from repro.tools.__main__ import main as tools_main


class TestCollect:
    def test_fresh_tree(self):
        t = BTree.create(None, in_memory=True)
        stats = collect_btree_stats(t)
        assert stats["nkeys"] == 0
        assert stats["depth"] == 1
        assert stats["leaf_pages"] == 1
        assert stats["internal_pages"] == 0
        t.close()

    def test_multilevel_tree(self):
        t = BTree.create(None, bsize=512, in_memory=True)
        for i in range(2000):
            t.put(f"key-{i:05d}".encode(), b"value")
        stats = collect_btree_stats(t)
        assert stats["nkeys"] == 2000
        assert stats["depth"] >= 2
        assert stats["level_counts"][0] == 1  # one root
        assert sum(stats["level_counts"]) == (
            stats["leaf_pages"] + stats["internal_pages"]
        )
        assert 0 < stats["leaf_utilization"] <= 1
        t.close()

    def test_big_items_and_free_pages_counted(self):
        t = BTree.create(None, bsize=512, in_memory=True)
        t.put(b"big", b"X" * 5000)
        t.put(b"gone", b"Y" * 5000)
        t.delete(b"gone")
        stats = collect_btree_stats(t)
        assert stats["big_items"] == 1
        assert stats["free_pages"] > 0
        t.close()

    def test_format(self):
        t = BTree.create(None, in_memory=True)
        t.put(b"k", b"v")
        text = format_btree_stats(t)
        assert "nkeys" in text
        assert "nodes per level" in text
        t.close()


class TestCLI:
    def test_stat_command_on_btree(self, tmp_path, capsys):
        p = tmp_path / "s.bt"
        t = BTree.create(p)
        for i in range(100):
            t.put(f"k{i}".encode(), b"v")
        t.close()
        assert tools_main(["stat", str(p)]) == 0
        out = capsys.readouterr().out
        assert "btree statistics" in out
        assert "100" in out
