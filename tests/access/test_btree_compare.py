"""Tests for user-defined key comparators (db(3)'s bt_compare)."""

import pytest

from repro.access.btree import BTree


def numeric_compare(a: bytes, b: bytes) -> int:
    """Order ASCII-decimal keys numerically, not lexicographically."""
    na, nb = int(a or b"0"), int(b or b"0")
    return (na > nb) - (na < nb)


def reverse_compare(a: bytes, b: bytes) -> int:
    return (a < b) - (a > b)


class TestNumericOrder:
    def test_iteration_follows_comparator(self):
        t = BTree.create(None, in_memory=True, compare=numeric_compare)
        for n in (100, 9, 25, 3, 1000):
            t.put(str(n).encode(), b"v")
        keys = [k for k, _v in t.items()]
        assert keys == [b"3", b"9", b"25", b"100", b"1000"]
        t.check_invariants()
        t.close()

    def test_get_and_delete_under_comparator(self):
        t = BTree.create(None, bsize=512, in_memory=True, compare=numeric_compare)
        for n in range(500):
            t.put(str(n).encode(), str(n * 2).encode())
        assert t.get(b"250") == b"500"
        assert t.delete(b"250") == 0
        assert t.get(b"250") is None
        assert len(t) == 499
        t.check_invariants()
        t.close()

    def test_range_scan_numeric(self):
        from repro.access.api import R_CURSOR, R_NEXT

        t = BTree.create(None, in_memory=True, compare=numeric_compare)
        for n in (5, 50, 500, 5000):
            t.put(str(n).encode(), b"v")
        rec = t.seq(R_CURSOR, key=b"49")
        assert rec[0] == b"50"
        assert t.seq(R_NEXT)[0] == b"500"
        t.close()

    def test_many_keys_stay_consistent(self):
        t = BTree.create(None, bsize=512, in_memory=True, compare=numeric_compare)
        import random

        rng = random.Random(9)
        nums = rng.sample(range(100_000), 2000)
        for n in nums:
            t.put(str(n).encode(), b"v")
        assert [int(k) for k, _v in t.items()] == sorted(nums)
        t.check_invariants()
        t.close()


class TestReverseOrder:
    def test_descending_iteration(self):
        t = BTree.create(None, in_memory=True, compare=reverse_compare)
        for k in (b"a", b"m", b"z"):
            t.put(k, b"v")
        assert [k for k, _v in t.items()] == [b"z", b"m", b"a"]
        t.check_invariants()
        t.close()


class TestPersistenceWithComparator:
    def test_reopen_with_same_comparator(self, tmp_path):
        p = tmp_path / "n.bt"
        with BTree.create(p, bsize=512, compare=numeric_compare) as t:
            for n in range(300):
                t.put(str(n).encode(), b"v")
        with BTree.open_file(p, compare=numeric_compare) as t:
            assert [int(k) for k, _v in t.items()] == list(range(300))
            assert t.get(b"123") == b"v"
            t.check_invariants()
