"""stat() parity: every access method returns one nested metrics dict with
the same top-level shape, populated when observability is on and
shape-stable (zeroed) when it is off."""

from __future__ import annotations

import json

import pytest

from repro.access.db import db_open
from repro.access.recno.recno import encode_recno

TOP_KEYS = {"type", "nkeys", "ops", "buffer", "io", "method"}
COUNT_KEYS = {"gets", "puts", "deletes", "splits"}
LATENCY_OPS = {"get", "put", "delete", "split"}
HIST_KEYS = {"count", "total", "mean", "min", "max", "p50", "p95", "p99"}
BUFFER_KEYS = {
    "hits",
    "misses",
    "evictions",
    "chain_evictions",
    "invalidations",
    "writebacks",
    "batched_runs",
    "resident",
    "dirty",
    "max_buffers",
}


def _key(type_: str, i: int) -> bytes:
    return encode_recno(i + 1) if type_ == "recno" else f"k{i:03d}".encode()


@pytest.fixture(params=["hash", "btree", "recno"])
def worked_db(request):
    db = db_open(None, request.param, "c")
    for i in range(40):
        db.put(_key(request.param, i), b"v")
    for i in range(40):
        db.get(_key(request.param, i))
    db.delete(_key(request.param, 39))
    yield request.param, db
    db.close()


class TestShapeParity:
    def test_top_level_keys(self, worked_db):
        type_, db = worked_db
        st = db.stat()
        assert set(st) >= TOP_KEYS
        assert st["type"] == type_

    def test_ops_subtree(self, worked_db):
        type_, db = worked_db
        st = db.stat()
        assert set(st["ops"]) == {"counts", "latency"}
        assert set(st["ops"]["counts"]) == COUNT_KEYS
        assert set(st["ops"]["latency"]) == LATENCY_OPS
        for op in LATENCY_OPS:
            assert set(st["ops"]["latency"][op]) == HIST_KEYS

    def test_buffer_and_io_subtrees(self, worked_db):
        _, db = worked_db
        st = db.stat()
        assert set(st["buffer"]) == BUFFER_KEYS
        assert set(st["io"]) == {
            "page_reads",
            "page_writes",
            "page_io",
            "syscalls",
            "bytes_read",
            "bytes_written",
        }

    def test_counts_reflect_workload(self, worked_db):
        type_, db = worked_db
        st = db.stat()
        counts = st["ops"]["counts"]
        assert counts["puts"] >= 40
        assert counts["gets"] >= 40
        assert counts["deletes"] >= 1
        assert st["nkeys"] == 39
        lat = st["ops"]["latency"]
        assert lat["put"]["count"] >= 40
        assert lat["get"]["count"] >= 40
        assert lat["get"]["p95"] >= lat["get"]["min"] > 0.0

    def test_json_serializable(self, worked_db):
        _, db = worked_db
        assert json.loads(json.dumps(db.stat())) == db.stat()


class TestDisabledObservability:
    @pytest.fixture(params=["hash", "btree", "recno"])
    def dark_db(self, request):
        db = db_open(None, request.param, "c", observability=False)
        for i in range(10):
            db.put(_key(request.param, i), b"v")
        yield request.param, db
        db.close()

    def test_shape_survives_disabled(self, dark_db):
        type_, db = dark_db
        st = db.stat()
        assert set(st) >= TOP_KEYS
        assert set(st["ops"]["latency"]) == LATENCY_OPS
        for op in LATENCY_OPS:
            assert set(st["ops"]["latency"][op]) == HIST_KEYS
            assert st["ops"]["latency"][op]["count"] == 0

    def test_data_operations_unaffected(self, dark_db):
        type_, db = dark_db
        assert db.get(_key(type_, 3)) == b"v"
        assert st_nkeys(db) == 10
        assert len(list(db.cursor())) == 10


def st_nkeys(db) -> int:
    return db.stat()["nkeys"]
