"""Extension benchmark: hash vs btree on the paper's workloads.

Not a paper figure -- the btree access method is the future work its
conclusion announces -- but the natural question the access package
raises: what does hashing buy over the btree for the keyed workloads of
the evaluation, and what does the btree buy back (ordered scans)?

Expected shape: hash wins point lookups (fewer page touches per probe:
one bucket chain vs a root-to-leaf walk); the btree's sequential scan is
sorted and its range queries are impossible for hash.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.access.btree import BTree
from repro.bench.report import format_series_table
from repro.bench.timing import measure
from repro.core.table import HashTable

SUBSET = 4000
CACHE = 1 << 20


def run_hash(pairs):
    def body():
        t = HashTable.create(
            None, bsize=1024, ffactor=32, nelem=len(pairs), cachesize=CACHE
        )
        for k, v in pairs:
            t.put(k, v)
        for k, _v in pairs:
            t.get(k)
        t.close()
        return t.io_stats.snapshot()

    io, m = measure(body)
    m.io = io
    return m


def run_btree(pairs):
    def body():
        t = BTree.create(None, bsize=1024, cachesize=CACHE)
        for k, v in pairs:
            t.put(k, v)
        for k, _v in pairs:
            t.get(k)
        t.close()
        return t.io_stats.snapshot()

    io, m = measure(body)
    m.io = io
    return m


def test_extension_hash_vs_btree(benchmark, dict_pairs, scale_note):
    pairs = dict_pairs[:SUBSET]
    results = {}

    def run():
        results["hash"] = run_hash(pairs)
        results["btree"] = run_btree(pairs)

    benchmark.pedantic(run, rounds=1, iterations=1)

    cells = {}
    for name, m in results.items():
        cells[(name, "user_s")] = m.user
        cells[(name, "elapsed_s")] = m.elapsed
        cells[(name, "page_io")] = float(m.io.page_io)
    emit(
        "extension_access_methods",
        format_series_table(
            f"Extension -- hash vs btree, create+read of {SUBSET} dictionary keys",
            "method",
            "metric",
            ["hash", "btree"],
            ["user_s", "elapsed_s", "page_io"],
            cells,
        ),
    )

    # hash should not lose the keyed workload (its home turf)
    assert results["hash"].cpu <= results["btree"].cpu * 1.5 + 0.05
