"""Micro-benchmarks: per-operation cost of every system.

Unlike the figure benchmarks (single timed suite runs), these use
pytest-benchmark's statistics properly -- many rounds over a steady-state
table -- so regressions in the hot paths (hash/lookup/insert) show up as
numbers with error bars.
"""

from __future__ import annotations

import pytest

from repro.baselines.dynahash import DynaHash
from repro.baselines.hsearch import Hsearch
from repro.core.hashfuncs import HASH_FUNCTIONS
from repro.core.table import HashTable
from repro.workloads import dictionary_pairs

N = 2000
PAIRS = list(dictionary_pairs(N))


@pytest.fixture(scope="module")
def warm_hash_table():
    t = HashTable.create(None, bsize=256, ffactor=8, nelem=N,
                         cachesize=1 << 20, in_memory=True)
    for k, v in PAIRS:
        t.put(k, v)
    yield t
    t.close()


def test_hash_get_hit(benchmark, warm_hash_table):
    keys = [k for k, _v in PAIRS[:256]]

    def lookup():
        for k in keys:
            warm_hash_table.get(k)

    benchmark(lookup)


def test_hash_get_miss(benchmark, warm_hash_table):
    keys = [b"missing-" + k for k, _v in PAIRS[:256]]

    def lookup():
        for k in keys:
            warm_hash_table.get(k)

    benchmark(lookup)


def test_hash_put_replace(benchmark, warm_hash_table):
    keys = [k for k, _v in PAIRS[:256]]

    def replace():
        for k in keys:
            warm_hash_table.put(k, b"replacement")

    benchmark(replace)


def test_hash_insert_fresh_table(benchmark):
    def build():
        t = HashTable.create(None, bsize=256, ffactor=8, in_memory=True)
        for k, v in PAIRS[:512]:
            t.put(k, v)
        t.close()

    benchmark(build)


def test_btree_get_hit(benchmark):
    from repro.access.btree import BTree

    t = BTree.create(None, bsize=1024, in_memory=True)
    for k, v in PAIRS:
        t.put(k, v)
    keys = [k for k, _v in PAIRS[:256]]

    def lookup():
        for k in keys:
            t.get(k)

    benchmark(lookup)
    t.close()


def test_dynahash_get_hit(benchmark):
    d = DynaHash(N)
    for k, v in PAIRS:
        d.put(k, v)
    keys = [k for k, _v in PAIRS[:256]]

    def lookup():
        for k in keys:
            d.get(k)

    benchmark(lookup)


def test_hsearch_find_hit(benchmark):
    h = Hsearch(N * 2)
    for k, v in PAIRS:
        h.enter(k, v)
    keys = [k for k, _v in PAIRS[:256]]

    def lookup():
        for k in keys:
            h.find(k)

    benchmark(lookup)


@pytest.mark.parametrize("name", sorted(HASH_FUNCTIONS))
def test_hash_function_throughput(benchmark, name):
    fn = HASH_FUNCTIONS[name]
    keys = [k for k, _v in PAIRS[:256]]

    def run():
        for k in keys:
            fn(k)

    benchmark(run)
