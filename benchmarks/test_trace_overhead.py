"""Trace overhead: the disabled tracer must cost (nearly) nothing.

Two artifacts, one guard, mirroring ``test_concurrency.py``:

1. The zero-overhead guard: a table that never calls
   ``enable_tracing()`` replays the flush-batching workload and must
   reproduce ``BENCH_flush_batching.json`` byte-for-byte -- same page
   writes, same batched syscall count.  The tracing layer is built so a
   disabled tracer is one attribute load + truth test per op and zero
   hook subscribers; identical I/O against the recorded artifact pins
   the tracing-off path well inside the +/-2% acceptance budget (it is
   exactly 0 on every deterministic counter).

2. ``BENCH_trace_overhead.json``: measured single-thread throughput of
   the same workload with tracing off, with the ring recording, and
   with ring + Chrome/Prometheus export, so the cost of *enabled*
   tracing is a tracked number instead of a claim.  Wall-clock arms are
   recorded honestly, not gated (CI timing noise dwarfs a
   one-predicate delta).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import REPO_ROOT, emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.table import HashTable
from repro.obs.export import to_chrome_trace, to_prometheus
from repro.workloads.dictionary import dictionary_words

N_INSERTS = 1000
BSIZE = 512
CACHESIZE = 1 << 22
N_OPS = 6000  # throughput arms: puts+gets over the dictionary keys


def _flush_batched(workdir: str, tracing: bool) -> dict:
    """The exact workload behind BENCH_flush_batching.json (batched arm)."""
    table = HashTable.create(
        f"{workdir}/trace-{int(tracing)}.db", bsize=BSIZE, cachesize=CACHESIZE
    )
    try:
        if tracing:
            table.enable_tracing(ring_capacity=None)
        for i, word in enumerate(dictionary_words(N_INSERTS)):
            table.put(word, f"value-{i:06d}".encode())
        before = table.io_stats.snapshot()
        pages = table.pool.flush(batched=True)
        delta = table.io_stats.snapshot() - before
        return {
            "pages_flushed": pages,
            "write_syscalls": delta.syscalls,
            "page_writes": delta.page_writes,
            "bytes_written": delta.bytes_written,
        }
    finally:
        table.close()


def test_tracing_off_matches_recorded_artifact(workdir):
    """A never-traced table must replicate BENCH_flush_batching.json
    exactly: adding the span-tracing layer changed nothing when off."""
    with open(os.path.join(REPO_ROOT, "BENCH_flush_batching.json")) as fh:
        recorded = json.load(fh)["stat"]["batched"]
    now = _flush_batched(workdir, tracing=False)
    for field in ("pages_flushed", "write_syscalls", "page_writes", "bytes_written"):
        assert now[field] == recorded[field], (
            f"tracing-off regression: {field} {now[field]} != "
            f"recorded {recorded[field]}"
        )
    # and the off state really is inert: no subscribers, nothing recorded
    t = HashTable.create(None, in_memory=True)
    try:
        t.put(b"k", b"v")
        t.get(b"k")
        assert not t.tracer.enabled
        assert all(not getattr(t.hooks, e) for e in t.hooks.EVENTS)
        assert len(t.flight_recorder) == 0
    finally:
        t.close()
    # enabled tracing does identical I/O too -- the toll is CPU only
    traced = _flush_batched(workdir, tracing=True)
    assert traced == now


def _ops_per_sec(mode: str, words) -> tuple[float, dict]:
    """One put+get sweep; returns (ops/sec, trace byproducts)."""
    table = HashTable.create(None, in_memory=True, bsize=BSIZE, ffactor=8)
    byproducts: dict = {}
    try:
        if mode != "off":
            table.enable_tracing(ring_capacity=None)
        t0 = time.perf_counter()
        for i in range(N_OPS // 2):
            table.put(words[i % len(words)], b"v" * 32)
        for i in range(N_OPS // 2):
            table.get(words[i % len(words)])
        elapsed = time.perf_counter() - t0
        if mode == "export":
            records = table.flight_recorder.events()
            byproducts["chrome_events"] = len(to_chrome_trace(records))
            byproducts["prometheus_bytes"] = len(to_prometheus(table.stat()))
        if mode != "off":
            byproducts["records"] = len(table.flight_recorder)
        return N_OPS / elapsed, byproducts
    finally:
        table.close()


def test_trace_overhead_snapshot(workdir):
    words = list(dictionary_words(2000))
    _ops_per_sec("off", words)  # warm-up: page caches, bytecode, buckets

    off, _ = _ops_per_sec("off", words)
    ring, ring_info = _ops_per_sec("ring", words)
    export, export_info = _ops_per_sec("export", words)

    payload = registry_snapshot(
        {
            "tracing_off_ops_per_sec": round(off, 1),
            "tracing_ring_ops_per_sec": round(ring, 1),
            "tracing_export_ops_per_sec": round(export, 1),
            "ring_overhead_pct": pct_change(off, ring),
            "export_overhead_pct": pct_change(off, export),
            "ring_records": ring_info["records"],
            "chrome_events": export_info["chrome_events"],
            "prometheus_bytes": export_info["prometheus_bytes"],
        },
        label="hash table ops/sec: tracing off vs ring-recording vs full export",
        context={
            "bsize": BSIZE,
            "ffactor": 8,
            "n_ops": N_OPS,
            "note": (
                "off-path parity is pinned byte-exactly against "
                "BENCH_flush_batching.json; wall-clock arms recorded, not gated"
            ),
        },
    )
    emit_json("trace_overhead", payload)
    # sanity floors, not perf gates: every arm still does real work
    assert off > 0 and ring > 0 and export > 0
    assert ring_info["records"] >= N_OPS  # one root span per op at minimum
