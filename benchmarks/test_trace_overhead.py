"""Trace overhead: the disabled tracer must cost (nearly) nothing.

Two artifacts, one guard, mirroring ``test_concurrency.py``:

1. The zero-overhead guard: a table that never calls
   ``enable_tracing()`` replays the flush-batching workload and must
   reproduce ``BENCH_flush_batching.json`` byte-for-byte -- same page
   writes, same batched syscall count.  The tracing layer is built so a
   disabled tracer is one attribute load + truth test per op and zero
   hook subscribers; identical I/O against the recorded artifact pins
   the tracing-off path well inside the +/-2% acceptance budget (it is
   exactly 0 on every deterministic counter).

2. ``BENCH_trace_overhead.json``: measured single-thread throughput of
   the same workload with tracing off, with the ring recording, and
   with ring + Chrome/Prometheus export, so the cost of *enabled*
   tracing is a tracked number instead of a claim.  Wall-clock arms are
   recorded honestly, not gated (CI timing noise dwarfs a
   one-predicate delta).

3. The serve-layer guard: a strictly serial single client drives a
   deterministic BATCH workload through a real loopback server, and the
   engine's I/O counters must match the artifact's ``serve_io`` section
   byte-exactly with tracing off -- the wire trace context, the
   detached request spans and the WAL span plumbing all ride the
   request path, so this pins "tracing off costs no I/O" across the
   whole stack, not just the engine.  The same workload with tracing on
   (client v2 frames + server spans) must do *identical* I/O: the toll
   is CPU and ring memory only.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import REPO_ROOT, emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.table import HashTable
from repro.obs.export import to_chrome_trace, to_prometheus
from repro.workloads.dictionary import dictionary_words

N_INSERTS = 1000
BSIZE = 512
CACHESIZE = 1 << 22
N_OPS = 6000  # throughput arms: puts+gets over the dictionary keys


def _flush_batched(workdir: str, tracing: bool) -> dict:
    """The exact workload behind BENCH_flush_batching.json (batched arm)."""
    table = HashTable.create(
        f"{workdir}/trace-{int(tracing)}.db", bsize=BSIZE, cachesize=CACHESIZE
    )
    try:
        if tracing:
            table.enable_tracing(ring_capacity=None)
        for i, word in enumerate(dictionary_words(N_INSERTS)):
            table.put(word, f"value-{i:06d}".encode())
        before = table.io_stats.snapshot()
        pages = table.pool.flush(batched=True)
        delta = table.io_stats.snapshot() - before
        return {
            "pages_flushed": pages,
            "write_syscalls": delta.syscalls,
            "page_writes": delta.page_writes,
            "bytes_written": delta.bytes_written,
        }
    finally:
        table.close()


def test_tracing_off_matches_recorded_artifact(workdir):
    """A never-traced table must replicate BENCH_flush_batching.json
    exactly: adding the span-tracing layer changed nothing when off."""
    with open(os.path.join(REPO_ROOT, "BENCH_flush_batching.json")) as fh:
        recorded = json.load(fh)["stat"]["batched"]
    now = _flush_batched(workdir, tracing=False)
    for field in ("pages_flushed", "write_syscalls", "page_writes", "bytes_written"):
        assert now[field] == recorded[field], (
            f"tracing-off regression: {field} {now[field]} != "
            f"recorded {recorded[field]}"
        )
    # and the off state really is inert: no subscribers, nothing recorded
    t = HashTable.create(None, in_memory=True)
    try:
        t.put(b"k", b"v")
        t.get(b"k")
        assert not t.tracer.enabled
        assert all(not getattr(t.hooks, e) for e in t.hooks.EVENTS)
        assert len(t.flight_recorder) == 0
    finally:
        t.close()
    # enabled tracing does identical I/O too -- the toll is CPU only
    traced = _flush_batched(workdir, tracing=True)
    assert traced == now


SERVE_BATCHES = 40
SERVE_BATCH_SIZE = 25


def _serve_io(workdir: str, tracing: bool) -> dict:
    """Deterministic serial BATCH workload against a loopback server;
    returns the engine's I/O counter deltas.  One client, one frame in
    flight at a time, fixed keys: coalescing, bucket growth and buffer
    traffic are all reproducible run to run."""
    from repro.access.db import db_open
    from repro.serve.client import Client
    from repro.serve.server import ServerConfig, ServerThread

    db = db_open(
        f"{workdir}/serve-{int(tracing)}.db", "hash", "c",
        concurrent=True, bsize=BSIZE, cachesize=CACHESIZE,
    )
    if tracing:
        db.enable_tracing(ring_capacity=None)
    st = ServerThread(db, ServerConfig(port=0), owns_db=True)
    st.start()
    try:
        before = db.io_stats.snapshot()
        with Client(port=st.port) as c:
            if tracing:
                c.enable_tracing()
            for b in range(SERVE_BATCHES):
                puts = [
                    ("put", b"serve-%05d" % (b * SERVE_BATCH_SIZE + i), b"v" * 64)
                    for i in range(SERVE_BATCH_SIZE)
                ]
                assert all(c.batch(puts))
                gets = [("get", op[1]) for op in puts]
                assert all(v is not None for v in c.batch(gets))
            # point ops and deletes ride the same serial stream
            for i in range(0, SERVE_BATCHES * SERVE_BATCH_SIZE, 7):
                assert c.get(b"serve-%05d" % i) is not None
            for i in range(0, SERVE_BATCHES * SERVE_BATCH_SIZE, 13):
                assert c.delete(b"serve-%05d" % i)
        db.sync()
        delta = db.io_stats.snapshot() - before
    finally:
        st.stop()
    return {
        "page_reads": delta.page_reads,
        "page_writes": delta.page_writes,
        "syscalls": delta.syscalls,
        "bytes_read": delta.bytes_read,
        "bytes_written": delta.bytes_written,
    }


def test_serve_tracing_off_matches_recorded_artifact(workdir):
    """The serve path with tracing off must reproduce the artifact's
    ``serve_io`` counters exactly, and tracing on must not change them."""
    off = _serve_io(workdir, tracing=False)
    artifact = os.path.join(REPO_ROOT, "BENCH_trace_overhead.json")
    with open(artifact) as fh:
        recorded = json.load(fh).get("serve_io")
    if recorded is not None:
        for field, value in recorded.items():
            assert off[field] == value, (
                f"serve tracing-off regression: {field} {off[field]} != "
                f"recorded {value}"
            )
    traced = _serve_io(workdir, tracing=True)
    assert traced == off, f"tracing changed serve-path I/O: {traced} != {off}"
    global _SERVE_IO  # picked up by the snapshot emitter below
    _SERVE_IO = off


_SERVE_IO: dict | None = None


def _ops_per_sec(mode: str, words) -> tuple[float, dict]:
    """One put+get sweep; returns (ops/sec, trace byproducts)."""
    table = HashTable.create(None, in_memory=True, bsize=BSIZE, ffactor=8)
    byproducts: dict = {}
    try:
        if mode != "off":
            table.enable_tracing(ring_capacity=None)
        t0 = time.perf_counter()
        for i in range(N_OPS // 2):
            table.put(words[i % len(words)], b"v" * 32)
        for i in range(N_OPS // 2):
            table.get(words[i % len(words)])
        elapsed = time.perf_counter() - t0
        if mode == "export":
            records = table.flight_recorder.events()
            byproducts["chrome_events"] = len(to_chrome_trace(records))
            byproducts["prometheus_bytes"] = len(to_prometheus(table.stat()))
        if mode != "off":
            byproducts["records"] = len(table.flight_recorder)
        return N_OPS / elapsed, byproducts
    finally:
        table.close()


def test_trace_overhead_snapshot(workdir):
    words = list(dictionary_words(2000))
    _ops_per_sec("off", words)  # warm-up: page caches, bytecode, buckets

    off, _ = _ops_per_sec("off", words)
    ring, ring_info = _ops_per_sec("ring", words)
    export, export_info = _ops_per_sec("export", words)

    payload = registry_snapshot(
        {
            "tracing_off_ops_per_sec": round(off, 1),
            "tracing_ring_ops_per_sec": round(ring, 1),
            "tracing_export_ops_per_sec": round(export, 1),
            "ring_overhead_pct": pct_change(off, ring),
            "export_overhead_pct": pct_change(off, export),
            "ring_records": ring_info["records"],
            "chrome_events": export_info["chrome_events"],
            "prometheus_bytes": export_info["prometheus_bytes"],
        },
        label="hash table ops/sec: tracing off vs ring-recording vs full export",
        context={
            "bsize": BSIZE,
            "ffactor": 8,
            "n_ops": N_OPS,
            "note": (
                "off-path parity is pinned byte-exactly against "
                "BENCH_flush_batching.json; wall-clock arms recorded, not gated"
            ),
        },
    )
    payload["serve_io"] = (
        _SERVE_IO if _SERVE_IO is not None else _serve_io(workdir, tracing=False)
    )
    payload["context"]["serve_workload"] = (
        f"{SERVE_BATCHES} batches x {SERVE_BATCH_SIZE} puts+gets, "
        "serial single client, plus point gets/deletes"
    )
    emit_json("trace_overhead", payload)
    # sanity floors, not perf gates: every arm still does real work
    assert off > 0 and ring > 0 and export > 0
    assert ring_info["records"] >= N_OPS  # one root span per op at minimum
