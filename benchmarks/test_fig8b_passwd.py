"""Figure 8b: the comparison on the small password database.

Same suites as Figure 8a on ~600 records.  The paper notes the small
database "runs so quickly ... that the results are uninteresting" in
elapsed terms; the stable signal at this scale is the page-I/O advantage,
which we assert.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.adapters import (
    HsearchAdapter,
    NdbmAdapter,
    NewHashAdapter,
    NewHashMemoryAdapter,
)
from repro.bench.report import format_comparison_table
from repro.bench.suites import disk_suite, memory_suite


def test_fig8b_disk_hash_vs_ndbm(benchmark, passwd_pairs_all, workdir):
    results = {}

    def run():
        results["hash"] = disk_suite(
            NewHashAdapter(workdir, bsize=1024, ffactor=32, cachesize=1 << 20),
            passwd_pairs_all,
            nelem_hint=len(passwd_pairs_all),
        )
        results["ndbm"] = disk_suite(
            NdbmAdapter(workdir, block_size=1024), passwd_pairs_all
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "fig8b_passwd_disk",
        format_comparison_table(
            "Figure 8b -- password database (~600 records), disk suite",
            results["hash"],
            results["ndbm"],
        ),
    )

    hash_r, ndbm_r = results["hash"], results["ndbm"]
    # the password file fits in cache: reads/verifies are nearly free
    assert hash_r["read"].io.page_io < ndbm_r["read"].io.page_io / 2
    assert hash_r["verify"].io.page_io <= ndbm_r["verify"].io.page_io / 2
    assert hash_r["create"].io.page_io < ndbm_r["create"].io.page_io


def test_fig8b_memory_hash_vs_hsearch(benchmark, passwd_pairs_all, workdir):
    results = {}

    def run():
        results["hash"] = memory_suite(
            NewHashMemoryAdapter(workdir, bsize=256, ffactor=8),
            passwd_pairs_all,
        )
        results["hsearch"] = memory_suite(
            HsearchAdapter(workdir), passwd_pairs_all
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "fig8b_passwd_memory",
        format_comparison_table(
            "Figure 8b -- password database, in-memory suite",
            results["hash"],
            results["hsearch"],
            old_name="hsearch",
            metrics=("user", "system", "elapsed"),
        ),
    )
    # tiny data set: both effectively instant (the paper's observation);
    # assert completion within generous bounds
    assert results["hash"]["create/read"].elapsed < 5.0
    assert results["hsearch"]["create/read"].elapsed < 5.0
