"""Figure 8a: the paper's headline comparison on the dictionary database.

Disk suite (bucket size 1024, fill factor 32): hash vs ndbm on CREATE /
READ / VERIFY / SEQUENTIAL / SEQUENTIAL+data.  Memory suite (bucket size
256, fill factor 8): hash vs hsearch on CREATE/READ.

Expected shape (paper's Figure 8a): the new package wins READ and VERIFY
by a large margin (caching), wins SEQUENTIAL+data, and may *lose* user
time on bare SEQUENTIAL (ndbm does not return the data).  In memory, hash
beats hsearch on user time.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.adapters import (
    HsearchAdapter,
    NdbmAdapter,
    NewHashAdapter,
    NewHashMemoryAdapter,
)
from repro.bench.report import format_comparison_table
from repro.bench.suites import disk_suite, memory_suite


def test_fig8a_disk_hash_vs_ndbm(benchmark, dict_pairs, scale_note, workdir):
    results = {}

    def run():
        results["hash"] = disk_suite(
            NewHashAdapter(workdir, bsize=1024, ffactor=32, cachesize=1 << 20),
            dict_pairs,
            nelem_hint=len(dict_pairs),
        )
        results["ndbm"] = disk_suite(
            NdbmAdapter(workdir, block_size=1024), dict_pairs
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "fig8a_dictionary_disk",
        format_comparison_table(
            f"Figure 8a -- dictionary database, disk suite; {scale_note}",
            results["hash"],
            results["ndbm"],
        ),
    )

    hash_r, ndbm_r = results["hash"], results["ndbm"]
    # READ/VERIFY: caching wins big (paper: 81-92% improvements)
    assert hash_r["read"].io.page_io < ndbm_r["read"].io.page_io / 2
    assert hash_r["verify"].io.page_io < ndbm_r["verify"].io.page_io / 2
    # CREATE: fewer page transfers than ndbm's write-through single buffer
    assert hash_r["create"].io.page_io < ndbm_r["create"].io.page_io
    # SEQUENTIAL+data: hash returns data in one pass, ndbm needs re-fetches
    assert (
        hash_r["sequential+data"].io.page_io
        < ndbm_r["sequential+data"].io.page_io
    )


def test_fig8a_memory_hash_vs_hsearch(benchmark, dict_pairs, scale_note, workdir):
    results = {}

    def run():
        results["hash"] = memory_suite(
            NewHashMemoryAdapter(workdir, bsize=256, ffactor=8, cachesize=1 << 20),
            dict_pairs,
        )
        results["hsearch"] = memory_suite(HsearchAdapter(workdir), dict_pairs)

    benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "fig8a_dictionary_memory",
        format_comparison_table(
            f"Figure 8a -- dictionary database, in-memory suite; {scale_note}",
            results["hash"],
            results["hsearch"],
            old_name="hsearch",
            metrics=("user", "system", "elapsed"),
        ),
    )

    # Both complete; hash stays within a small factor of hsearch's simple
    # probing even though it maintains pages (the paper's win came from C
    # cycle counts; in Python we assert the same order of magnitude).
    h = results["hash"]["create/read"].cpu
    s = results["hsearch"]["create/read"].cpu
    assert h < s * 8
