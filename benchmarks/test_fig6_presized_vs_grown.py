"""Figure 6: creating a table of known final size vs growing dynamically.

"Figure 6 illustrates the difference in performance between storing keys in
a file when the ultimate size is known ... compared to building the file
when the ultimate size is unknown ... Once the fill factor is sufficiently
high for the page size (8), growing the table dynamically does little to
degrade performance."

One bar group per fill factor in {4, 8, 16, 32, 64}; bars are user/system
(I/O)/elapsed for the pre-sized (nelem=N) and grown (nelem=1) cases.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CACHE, emit
from repro.bench.report import format_bar_table
from repro.bench.timing import measure
from repro.core.table import HashTable

FILL_FACTORS = [4, 8, 16, 32, 64]
BSIZE = 256  # the sweet-spot page size the paper uses for this figure


def run_create(pairs, ffactor: int, presized: bool):
    def body():
        t = HashTable.create(
            None,
            bsize=BSIZE,
            ffactor=ffactor,
            nelem=len(pairs) if presized else 1,
            cachesize=SWEEP_CACHE,
        )
        for k, v in pairs:
            t.put(k, v)
        splits = t.stats.splits
        t.close()  # close flushes: count its writes too
        return t.io_stats.snapshot(), splits

    (io, splits), m = measure(body)
    m.io = io
    return m, splits


def run_bulk(pairs, ffactor: int):
    """The bulk-loader arm: same keys, presize computed by ``bulk_load``
    itself; ``on_split`` proves the load never splits."""
    def body():
        t = HashTable.create(
            None, bsize=BSIZE, ffactor=ffactor, cachesize=SWEEP_CACHE
        )
        split_events: list = []
        t.hooks.subscribe("on_split", split_events.append)
        t.bulk_load(pairs)
        t.close()
        return t.io_stats.snapshot(), len(split_events)

    (io, splits), m = measure(body)
    m.io = io
    return m, splits


def test_fig6_presized_vs_grown(benchmark, dict_pairs, scale_note):
    rows: dict[str, dict] = {
        "pre-sized user (s)": {},
        "grown     user (s)": {},
        "pre-sized page I/O": {},
        "grown     page I/O": {},
        "pre-sized elapsed (s)": {},
        "grown     elapsed (s)": {},
        "pre-sized splits": {},
        "grown     splits": {},
        "bulk-load user (s)": {},
        "bulk-load page I/O": {},
        "bulk-load elapsed (s)": {},
        "bulk-load splits": {},
    }

    def sweep():
        for ff in FILL_FACTORS:
            pre, pre_splits = run_create(dict_pairs, ff, presized=True)
            grown, grown_splits = run_create(dict_pairs, ff, presized=False)
            bulk, bulk_splits = run_bulk(dict_pairs, ff)
            rows["bulk-load user (s)"][ff] = bulk.user
            rows["bulk-load page I/O"][ff] = bulk.io.page_io
            rows["bulk-load elapsed (s)"][ff] = bulk.elapsed
            rows["bulk-load splits"][ff] = bulk_splits
            rows["pre-sized user (s)"][ff] = pre.user
            rows["grown     user (s)"][ff] = grown.user
            rows["pre-sized page I/O"][ff] = pre.io.page_io
            rows["grown     page I/O"][ff] = grown.io.page_io
            rows["pre-sized elapsed (s)"][ff] = pre.elapsed
            rows["grown     elapsed (s)"][ff] = grown.elapsed
            rows["pre-sized splits"][ff] = pre_splits
            rows["grown     splits"][ff] = grown_splits

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "fig6_presized_vs_grown",
        format_bar_table(
            f"Figure 6 -- known final size vs dynamically grown; {scale_note}",
            FILL_FACTORS,
            rows,
        ),
    )

    # Shape assertions:
    # 1. pre-sizing eliminates controlled growth: far fewer splits than
    #    the grown table (overflow-driven splits can still occur when the
    #    fill factor overcommits the page size)
    for ff in FILL_FACTORS:
        assert rows["pre-sized splits"][ff] < rows["grown     splits"][ff]
        assert rows["grown     splits"][ff] > 0
    assert rows["pre-sized splits"][4] == 0  # Eq-1-satisfying config
    # 2. at the paper's sweet-spot fill factor (8: Equation 1 satisfied and
    #    the table fits the pool) pre-sizing wins, paying no split cost.
    #    (At ffactor 4 the pre-sized table is bigger than the 1M pool at
    #    full scale and can thrash -- visible in its page-I/O row -- so the
    #    CPU claim is made where the paper makes it.)
    assert rows["grown     user (s)"][8] >= rows["pre-sized user (s)"][8] * 0.9
    # 3. the penalty narrows once the fill factor is high enough for the
    #    page size (the paper's observation at ffactor >= 8): the grown/
    #    pre-sized user-time ratio at 64 is no worse than ~2x
    ratio_hi = rows["grown     user (s)"][64] / max(
        rows["pre-sized user (s)"][64], 1e-9
    )
    assert ratio_hi < 3.0
    # 4. the bulk loader is the "known in advance" case taken further:
    #    zero splits at every fill factor (asserted via on_split, not
    #    just the counter), sitting on the pre-sized side of the gap.
    for ff in FILL_FACTORS:
        assert rows["bulk-load splits"][ff] == 0
    assert rows["bulk-load user (s)"][8] <= rows["grown     user (s)"][8] * 1.1
