"""Concurrency benchmarks: locking overhead and thread scaling.

Two artifacts, one guard:

1. The zero-overhead guard: a ``concurrent=False`` table replays the
   flush-batching workload and must reproduce ``BENCH_flush_batching.json``
   exactly (same page writes, same batched syscall count).  The locking
   layer is built so a single-threaded handle takes no locks at all; this
   pins that claim to the previously recorded artifact.

2. ``BENCH_concurrency.json``: measured single-thread throughput of a
   plain handle vs a ``concurrent=True`` handle (the rwlock toll), plus
   1-vs-4-thread throughput of the concurrent handle.  CPython holds the
   GIL, so threads interleave rather than parallelize -- the artifact
   records that honestly instead of claiming speedup.
"""

from __future__ import annotations

import json
import os
import threading
import time

from benchmarks.conftest import REPO_ROOT, emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.table import HashTable
from repro.workloads.dictionary import dictionary_words

N_INSERTS = 1000
BSIZE = 512
CACHESIZE = 1 << 22
NTHREADS = 4
OPS_PER_THREAD = 4000


def _flush_batched(workdir: str, concurrent: bool) -> dict:
    """The exact workload behind BENCH_flush_batching.json (batched arm)."""
    table = HashTable.create(
        f"{workdir}/guard-{int(concurrent)}.db",
        bsize=BSIZE,
        cachesize=CACHESIZE,
        concurrent=concurrent,
    )
    try:
        for i, word in enumerate(dictionary_words(N_INSERTS)):
            table.put(word, f"value-{i:06d}".encode())
        before = table.io_stats.snapshot()
        pages = table.pool.flush(batched=True)
        delta = table.io_stats.snapshot() - before
        return {
            "pages_flushed": pages,
            "write_syscalls": delta.syscalls,
            "page_writes": delta.page_writes,
            "bytes_written": delta.bytes_written,
        }
    finally:
        table.close()


def test_single_threaded_path_matches_recorded_artifact(workdir):
    """concurrent=False must replicate BENCH_flush_batching.json: adding
    the locking layer changed nothing on the unlocked path."""
    with open(os.path.join(REPO_ROOT, "BENCH_flush_batching.json")) as fh:
        recorded = json.load(fh)["stat"]["batched"]
    now = _flush_batched(workdir, concurrent=False)
    for field in ("pages_flushed", "write_syscalls", "page_writes", "bytes_written"):
        assert now[field] == recorded[field], (
            f"single-threaded regression: {field} {now[field]} != "
            f"recorded {recorded[field]}"
        )
    # the locked handle does identical I/O too -- the toll is CPU only
    locked = _flush_batched(workdir, concurrent=True)
    assert locked == now


def _ops_per_sec(table, nthreads: int, words) -> float:
    """Mixed put/get workload, ops/sec wall-clock across all threads."""
    barrier = threading.Barrier(nthreads + 1)

    def worker(tid):
        barrier.wait()
        for i in range(OPS_PER_THREAD):
            w = words[(tid * OPS_PER_THREAD + i) % len(words)]
            if i % 4 == 0:
                table.put(w, b"v" * 32)
            else:
                table.get(w)

    threads = [
        threading.Thread(target=worker, args=(t,), daemon=True)
        for t in range(nthreads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return nthreads * OPS_PER_THREAD / elapsed


def test_concurrency_throughput_snapshot(workdir):
    words = list(dictionary_words(2000))

    def make(concurrent):
        return HashTable.create(
            None, in_memory=True, bsize=BSIZE, ffactor=8, concurrent=concurrent
        )

    plain = make(False)
    try:
        base = _ops_per_sec(plain, 1, words)
    finally:
        plain.close()

    locked = make(True)
    try:
        locked_1t = _ops_per_sec(locked, 1, words)
    finally:
        locked.close()

    shared = make(True)
    try:
        locked_4t = _ops_per_sec(shared, NTHREADS, words)
        shared.check_invariants()
    finally:
        shared.close()

    payload = registry_snapshot(
        {
            "plain_1thread_ops_per_sec": round(base, 1),
            "concurrent_1thread_ops_per_sec": round(locked_1t, 1),
            "concurrent_4thread_ops_per_sec": round(locked_4t, 1),
            "rwlock_overhead_pct": pct_change(base, locked_1t),
            "scaling_4t_vs_1t_pct": pct_change(locked_1t, locked_4t),
        },
        label="hash table ops/sec: plain vs rwlock-guarded, 1 vs 4 threads",
        context={
            "bsize": BSIZE,
            "ffactor": 8,
            "ops_per_thread": OPS_PER_THREAD,
            "nthreads": NTHREADS,
            "note": "CPython GIL: threads interleave, no parallel speedup expected",
        },
    )
    emit_json("concurrency", payload)
    # sanity floor, not a perf gate: the locked handle still does real work
    assert locked_1t > 0 and locked_4t > 0
