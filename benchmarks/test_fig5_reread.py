"""Figure 5's closing observation: cold rereads favour larger pages.

"If the file was closed and written to disk, the conclusions were still
the same.  However, rereading the file from disk was slightly faster if a
larger bucket size and fill factor were used (1K bucket size and 32 fill
factor).  This follows intuitively from the improved efficiency of
performing 1K reads from the disk rather than 256 byte reads.  In
general, performance for disk based tables is best when the page size is
approximately 1K."

We build each table on disk, close it, reopen with a cold pool behind the
simulated 1991 disk, and read every key.  Expected shape: the 1K/32
configuration rereads in less modelled disk time than 256/8 (fewer,
larger transfers), which beats tiny pages handily.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.report import format_series_table
from repro.core.table import HashTable
from repro.storage.simdisk import SimulatedDisk

#: (bsize, ffactor) pairs along Equation 1
CONFIGS = [(128, 8), (256, 8), (1024, 32), (8192, 128)]


def run_reread(pairs, bsize, ffactor, workdir):
    path = f"{workdir}/reread-{bsize}.db"
    t = HashTable.create(
        path, bsize=bsize, ffactor=ffactor, nelem=len(pairs), cachesize=1 << 20
    )
    for k, v in pairs:
        t.put(k, v)
    t.close()

    holder = {}

    def wrapper(f):
        holder["d"] = SimulatedDisk(f, os_cache_bytes=0)  # cold everything
        return holder["d"]

    t = HashTable.open_file(path, cachesize=1 << 20, file_wrapper=wrapper)
    for k, _v in pairs:
        t.get(k)
    t.close()
    disk = holder["d"]
    return disk.sim_seconds, disk.stats.page_reads


def test_fig5_cold_reread(benchmark, dict_pairs, scale_note, workdir):
    results = {}

    def sweep():
        for bsize, ffactor in CONFIGS:
            results[(bsize, ffactor)] = run_reread(
                dict_pairs, bsize, ffactor, workdir
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"{b}/{f}" for b, f in CONFIGS]
    cells = {}
    for (b, f), (sim, reads) in results.items():
        cells[(f"{b}/{f}", "sim_seconds")] = sim
        cells[(f"{b}/{f}", "page_reads")] = float(reads)
    emit(
        "fig5_cold_reread",
        format_series_table(
            f"Figure 5 epilogue -- cold reread from disk; {scale_note}",
            "bsize/ff",
            "metric",
            rows,
            ["sim_seconds", "page_reads"],
            cells,
        ),
    )

    # the paper's claim: 1K/32 rereads faster than 256/8, far faster than 128/8
    assert results[(1024, 32)][0] < results[(256, 8)][0]
    assert results[(1024, 32)][0] < results[(128, 8)][0]
