"""Shared benchmark configuration.

Scale: by default the sweeps run on a 4 000-key subset of the paper's
24 474-key dictionary so the whole harness finishes in a few minutes of
interpreted Python.  Set ``REPRO_FULL=1`` to run every experiment at the
paper's full scale (EXPERIMENTS.md records a full-scale run).

Every benchmark prints the paper-style table it regenerates *and* writes it
to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads import dictionary_pairs, passwd_pairs

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: dictionary keys used by the sweeps (full paper scale or CI scale)
DICT_N = 24474 if FULL else 4000

#: buffer pool used by the Figure 5/6 sweeps ("the buffer size was set at 1M")
SWEEP_CACHE = 1 << 20

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def dict_pairs():
    """The dictionary dataset at the configured scale."""
    return list(dictionary_pairs(DICT_N))


@pytest.fixture(scope="session")
def passwd_pairs_all():
    """The password dataset (full paper scale -- it is tiny)."""
    return list(passwd_pairs())


@pytest.fixture(scope="session")
def scale_note():
    return (
        f"scale: {DICT_N} dictionary keys"
        + ("" if FULL else " (set REPRO_FULL=1 for the paper's 24474)")
    )


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit(name: str, text: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")


def emit_json(name: str, payload: dict) -> str:
    """Persist an observability snapshot as BENCH_<name>.json at the repo
    root (the machine-readable counterpart of ``emit``)."""
    from repro.bench.report import write_bench_json

    path = write_bench_json(name, payload, REPO_ROOT)
    print(f"wrote {path}")
    return path


@pytest.fixture
def workdir(tmp_path):
    return str(tmp_path)
