"""Flush batching: syscalls-per-flush before/after run coalescing.

The batched :meth:`BufferPool.flush` sorts dirty pages and coalesces
contiguous runs into single vectored writes.  This benchmark loads the
1000-insert dictionary workload into a large cache, flushes it once each
way, and persists the real IOStats deltas as ``BENCH_flush_batching.json``
so the syscall reduction is a tracked artifact, not a claim.
"""

from __future__ import annotations

from benchmarks.conftest import emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.table import HashTable
from repro.workloads.dictionary import dictionary_words

N_INSERTS = 1000
BSIZE = 512
CACHESIZE = 1 << 22  # hold the whole workload so close() is one big flush


def _flush_once(workdir: str, batched: bool) -> dict:
    """Build the table, flush it one way, return the flush's I/O delta."""
    suffix = "batched" if batched else "per_page"
    table = HashTable.create(
        f"{workdir}/flush-{suffix}.db", bsize=BSIZE, cachesize=CACHESIZE
    )
    try:
        for i, word in enumerate(dictionary_words(N_INSERTS)):
            table.put(word, f"value-{i:06d}".encode())
        before = table.io_stats.snapshot()
        pages = table.pool.flush(batched=batched)
        delta = table.io_stats.snapshot() - before
        return {
            "pages_flushed": pages,
            "write_syscalls": delta.syscalls,
            "page_writes": delta.page_writes,
            "bytes_written": delta.bytes_written,
            "syscalls_per_page": delta.syscalls / max(pages, 1),
            "batched_runs": table.pool.metrics()["batched_runs"],
        }
    finally:
        table.close()


def test_flush_batching_snapshot(workdir):
    plain = _flush_once(workdir, batched=False)
    batch = _flush_once(workdir, batched=True)

    # Same work either way; coalescing must at least halve the syscalls.
    assert plain["pages_flushed"] == batch["pages_flushed"] > 10
    assert plain["write_syscalls"] == plain["pages_flushed"]
    assert batch["write_syscalls"] < plain["write_syscalls"] // 2

    payload = registry_snapshot(
        {
            "per_page": plain,
            "batched": batch,
            "syscall_reduction_pct": pct_change(
                plain["write_syscalls"], batch["write_syscalls"]
            ),
        },
        label="dictionary 1000-insert flush: per-page vs batched write-back",
        context={"n_inserts": N_INSERTS, "bsize": BSIZE, "cachesize": CACHESIZE},
    )
    emit_json("flush_batching", payload)
