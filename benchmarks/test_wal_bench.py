"""WAL benchmarks: group-commit throughput and recovery time.

Two artifacts in ``BENCH_wal.json``, each with a deterministic gate:

1. Group commit: committed writes/sec with 1 committer vs 8 concurrent
   committers under ``durability='wal+fsync'``.  The log's fsync is the
   bottleneck by construction (the wrapper below adds a fixed delay per
   sync, modelling a disk's flush latency), so coalescing concurrent
   COMMITs into one fsync is directly visible.  The GATE is on counters,
   not wall clock: with 8 threads the WAL must issue measurably fewer
   fsyncs than commits.

2. Recovery: reopen time after a simulated ``kill -9`` as a function of
   WAL length (checkpointing disabled, so the log holds everything).
   The GATE is correctness: every committed key readable after replay.
"""

from __future__ import annotations

import os
import threading
import time

from benchmarks.conftest import emit_json
from repro.bench.report import registry_snapshot
from repro.core.table import HashTable
from repro.core.wal import wal_path_for

BSIZE = 512
NTHREADS = 8
COMMITS_TOTAL = 80  # same total work in both arms
KEYS_PER_COMMIT = 4
SYNC_DELAY = 0.002  # a realistic-ish flush latency, GIL-released


class SlowSyncStore:
    """Wrap the WAL's byte store with a fixed per-sync delay.

    ``time.sleep`` releases the GIL, so while the group-commit leader
    waits on the 'disk', follower threads can append and queue -- the
    same overlap a real fsync gives.
    """

    def __init__(self, inner, delay: float = SYNC_DELAY) -> None:
        self._inner = inner
        self.delay = delay

    def sync(self) -> None:
        time.sleep(self.delay)
        self._inner.sync()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _commit_rate(workdir: str, nthreads: int) -> tuple[float, dict]:
    """Run COMMITS_TOTAL transactions across ``nthreads`` committers;
    returns (commits/sec, the handle's wal stat section)."""
    table = HashTable.create(
        f"{workdir}/gc{nthreads}.db",
        bsize=BSIZE,
        durability="wal+fsync",
        concurrent=True,
        wal_wrapper=SlowSyncStore,
    )
    per_thread = COMMITS_TOTAL // nthreads
    errors: list[Exception] = []
    barrier = threading.Barrier(nthreads + 1)

    def committer(tid: int) -> None:
        try:
            barrier.wait()
            for j in range(per_thread):
                table.begin()
                for i in range(KEYS_PER_COMMIT):
                    table.put(f"t{tid}-c{j}-k{i}".encode(), b"v" * 32)
                table.commit()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=committer, args=(t,), daemon=True)
        for t in range(nthreads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors
    try:
        wal_stat = table.stat()["wal"]
        # correctness: every committed write really landed
        for tid in range(nthreads):
            for j in range(per_thread):
                assert table.get(f"t{tid}-c{j}-k0".encode()) == b"v" * 32
    finally:
        table.close()
    return COMMITS_TOTAL / elapsed, wal_stat


def _recovery_time(workdir: str, ncommits: int) -> dict:
    """Commit ``ncommits`` transactions, kill without close, time the
    replay on reopen."""
    path = f"{workdir}/rec{ncommits}.db"
    table = HashTable.create(
        path,
        bsize=BSIZE,
        durability="wal",
        wal_checkpoint_bytes=1 << 30,  # never checkpoint: the log keeps all
    )
    for j in range(ncommits):
        table.begin()
        for i in range(KEYS_PER_COMMIT):
            table.put(f"c{j:05d}-k{i}".encode(), b"v" * 32)
        table.commit()
    wal_bytes = os.path.getsize(wal_path_for(path))
    del table  # kill -9

    t0 = time.perf_counter()
    reopened = HashTable.open_file(path)
    replay_s = time.perf_counter() - t0
    try:
        recovery = reopened.stats.extra["wal_recovery"]
        # the gate: zero lost committed writes at every log length
        for j in range(ncommits):
            for i in range(KEYS_PER_COMMIT):
                assert reopened.get(f"c{j:05d}-k{i}".encode()) == b"v" * 32
    finally:
        reopened.close()
    return {
        "commits": ncommits,
        "wal_bytes": wal_bytes,
        "frames_replayed": recovery["frames"],
        "replay_seconds": round(replay_s, 4),
    }


def test_wal_bench_snapshot(workdir):
    rate_1t, stat_1t = _commit_rate(workdir, 1)
    rate_8t, stat_8t = _commit_rate(workdir, NTHREADS)

    # THE regression gate (counters, deterministic): concurrent
    # committers coalesce -- measurably fewer fsyncs than commits
    # (commits may exceed COMMITS_TOTAL by the create-time implicit one)
    assert stat_8t["commits"] >= COMMITS_TOTAL
    assert stat_8t["fsyncs"] < stat_8t["commits"], (
        f"group commit broken: {stat_8t['fsyncs']} fsyncs for "
        f"{stat_8t['commits']} commits"
    )
    # a lone committer cannot coalesce: one fsync per explicit commit
    assert stat_1t["fsyncs"] >= COMMITS_TOTAL

    recovery = [_recovery_time(workdir, n) for n in (50, 200, 800)]

    payload = registry_snapshot(
        {
            "group_commit": {
                "commit_rate_1thread_per_sec": round(rate_1t, 1),
                f"commit_rate_{NTHREADS}thread_per_sec": round(rate_8t, 1),
                "fsyncs_1thread": stat_1t["fsyncs"],
                f"fsyncs_{NTHREADS}thread": stat_8t["fsyncs"],
                "commits_per_arm": COMMITS_TOTAL,
                "coalescing_ratio": round(
                    stat_8t["commits"] / max(1, stat_8t["fsyncs"]), 2
                ),
            },
            "recovery": recovery,
        },
        label="WAL group commit (1 vs 8 committers) and replay time vs log length",
        context={
            "bsize": BSIZE,
            "keys_per_commit": KEYS_PER_COMMIT,
            "sync_delay_s": SYNC_DELAY,
            "durability": "wal+fsync (group commit) / wal (recovery)",
            "note": "fsync gate is on counters; wall-clock numbers are informational",
        },
    )
    emit_json("wal", payload)
