"""Figures 5a/5b/5c: page size x fill factor sweep on the dictionary set.

"Each of the graphs shows the timings resulting from varying the pagesize
from 128 bytes to 1M and the fill factor from 1 to 128.  For each run, the
buffer size was set at 1M. ... The tradeoff works out most favorably when
the page size is 256 and the fill factor is 8."

The run is the paper's: create a new table (final size known in advance),
enter each pair, retrieve each pair.  We emit three series -- system-time
proxy (page I/O), elapsed seconds, and user (CPU) seconds -- one row per
bucket size, one column per fill factor.

Expected shape: for every bucket size the numbers improve as the fill
factor grows until Equation 1 is satisfied, then flatten; tiny pages with
tiny fill factors are the worst corner.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CACHE, emit
from repro.bench.report import format_series_table
from repro.bench.timing import measure
from repro.core.table import HashTable

#: the sweep grid (our max page size is the format's 32K ceiling; the
#: paper swept to 1M before the 16-bit offset limit was settled)
BUCKET_SIZES = [128, 256, 512, 1024, 4096, 8192]
FILL_FACTORS = [1, 2, 4, 8, 16, 32, 64, 128]


def run_once(pairs, bsize: int, ffactor: int):
    """The paper's dictionary run: create (size known), store, retrieve."""

    def body():
        t = HashTable.create(
            None,
            bsize=bsize,
            ffactor=ffactor,
            nelem=len(pairs),
            cachesize=SWEEP_CACHE,
        )
        for k, v in pairs:
            t.put(k, v)
        for k, _v in pairs:
            t.get(k)
        t.close()  # close flushes: count its writes too
        return t.io_stats.snapshot()

    io, m = measure(body)
    m.io = io  # I/O of the anonymous backing file
    return m


def test_fig5_sweep(benchmark, dict_pairs, scale_note):
    results = {}

    def sweep():
        for bsize in BUCKET_SIZES:
            for ffactor in FILL_FACTORS:
                results[(bsize, ffactor)] = run_once(dict_pairs, bsize, ffactor)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for name, metric, fmt in (
        ("fig5a_system_time", "page_io", "{:.0f}"),
        ("fig5b_elapsed_time", "elapsed", "{:.2f}"),
        ("fig5c_user_time", "user", "{:.2f}"),
    ):
        cells = {k: m.metric(metric) for k, m in results.items()}
        emit(
            name,
            format_series_table(
                f"Figure 5 ({metric}) -- dictionary set, 1M buffer; {scale_note}",
                "bsize",
                "ffactor",
                BUCKET_SIZES,
                FILL_FACTORS,
                cells,
                fmt=fmt,
            ),
        )

    # Shape assertions (the paper's qualitative conclusions):
    # 1. for each bucket size, raising ffactor from 1 to 8 helps page I/O
    for bsize in BUCKET_SIZES:
        assert (
            results[(bsize, 8)].io.page_io <= results[(bsize, 1)].io.page_io
        ), f"ffactor 8 should beat ffactor 1 at bsize {bsize}"
    # 2. the 256/8 sweet spot beats the pathological corner by a wide margin
    sweet = results[(256, 8)].io.page_io
    worst = results[(128, 1)].io.page_io
    assert sweet < worst
