"""Observability snapshot: run the dictionary workload with the metrics
registry enabled and persist the full ``db.stat()`` tree as BENCH_*.json.

This is the machine-readable counterpart of the figure tables: every run
records operation counts, latency quantiles, buffer-pool behaviour and
page I/O for the standard dictionary load/read workload, so regressions
show up as diffs in the snapshot rather than only in wall-clock time.
"""

from __future__ import annotations

from benchmarks.conftest import DICT_N, SWEEP_CACHE, emit_json
from repro.bench.report import registry_snapshot
from repro.core.table import HashTable


def test_obs_registry_snapshot(dict_pairs, workdir):
    table = HashTable.create(
        workdir + "/obs.db", bsize=1024, ffactor=32, cachesize=SWEEP_CACHE
    )
    try:
        for k, v in dict_pairs:
            table.put(k, v)
        for k, _v in dict_pairs:
            table.get(k)

        stat = table.stat()
        assert stat["ops"]["counts"]["puts"] == len(dict_pairs)
        assert stat["ops"]["counts"]["gets"] == len(dict_pairs)
        assert stat["ops"]["latency"]["put"]["count"] == len(dict_pairs)
        assert stat["ops"]["latency"]["get"]["p95"] >= 0.0

        payload = registry_snapshot(
            stat,
            label="dictionary load + full read (hash)",
            context={
                "scale": DICT_N,
                "bsize": 1024,
                "ffactor": 32,
                "cachesize": SWEEP_CACHE,
            },
        )
        emit_json("fig8a_observability", payload)
    finally:
        table.close()
