"""Serving-layer benchmark: naive request/response vs pipelined BATCH.

Two arms against one in-process server (loopback TCP, ``concurrent``
table, request coalescer on), each run for both reads and writes:

* **naive** -- 100 simulated clients, each with exactly one request in
  flight: send one GET/PUT, wait for its response, repeat.  The
  dbm-over-a-socket strawman.
* **batch** -- the same 100 clients shipping the same ops as pipelined
  BATCH frames, so the coalescer can feed the engine's bulk paths with
  whole runs at a time.

Clients are *simulated*: one driver thread multiplexes all 100
connections (send everything each client is allowed to have in flight,
then harvest).  That keeps the measurement about the serving stack --
100 real client threads would mostly benchmark GIL contention between
the drivers and the server's engine thread.

The acceptance gate of the serving-layer PR: batched GET throughput
must be **>= 3x** naive at 100 clients (the write path is recorded and
floor-gated, but puts are engine-bound -- the coalescer already merges
the naive arm's concurrent singles into shared ``put_many`` batches, a
design win that narrows the write-path ratio).  Both arms run in the
same process on the same server, so the ratio is immune to machine
speed; wall-clock ops/sec and p50/p99 (measured with the package's own
ms histograms) land in ``BENCH_server.json`` for trend-watching.

A connection-scaling sweep (100 -> 1000 simulated clients, one BATCH
each) records how throughput holds as the accept load grows; arms that
would exceed the process fd limit are skipped and recorded as such
rather than silently dropped.
"""

from __future__ import annotations

import resource
import time

from benchmarks.conftest import emit, emit_json
from repro.access.db import db_open
from repro.obs.registry import Histogram
from repro.serve.client import Client
from repro.serve.server import ServerConfig, ServerThread

CLIENTS = 100
OPS_PER_CLIENT = 60
BATCH_SIZE = 20  # ops per BATCH frame in the batch arm
MIN_GET_SPEEDUP = 3.0
#: writes are engine-bound in both arms (see module docstring): the
#: floor only guards against the batch path regressing below naive
MIN_PUT_SPEEDUP = 1.3
SWEEP = (100, 300, 1000)
VALUE = b"v" * 32
PRELOAD = 20_000


def _fd_budget() -> int:
    """Raise the soft fd limit as far as the hard limit allows and
    return how many client connections fit (2 fds each: client+server
    end, both in this process), with headroom for the interpreter."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = min(hard, 8192)
    if soft < want:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))
            soft = want
        except (ValueError, OSError):
            pass
    return max(16, (soft - 128) // 2)


def _arm_naive(conns, make_op, hist):
    """One op in flight per client: send one frame on every connection,
    harvest every response, repeat."""
    n_rounds = OPS_PER_CLIENT
    t_all = time.perf_counter()
    for rnd in range(n_rounds):
        pending = []
        for j, c in enumerate(conns):
            op = make_op(j, rnd)
            t0 = time.perf_counter()
            pending.append((c, c.send(*op), t0))
        for c, rid, t0 in pending:
            assert c.result(rid) is not None
            hist.observe((time.perf_counter() - t0) * 1e3)
    return time.perf_counter() - t_all


def _arm_batch(conns, make_op, hist):
    """The same ops as pipelined BATCH frames: every frame on the wire
    before the first response is claimed."""
    t_all = time.perf_counter()
    pending = []
    for j, c in enumerate(conns):
        for base in range(0, OPS_PER_CLIENT, BATCH_SIZE):
            ops = [make_op(j, base + i) for i in range(BATCH_SIZE)]
            t0 = time.perf_counter()
            pending.append((c, c.send("batch", ops), t0))
    for c, rid, t0 in pending:
        assert all(v is not None for v in c.result(rid))
        hist.observe((time.perf_counter() - t0) * 1e3)
    return time.perf_counter() - t_all


def _measure(conns, make_naive, make_batch):
    naive_lat = Histogram("naive", unit="ms")
    batch_lat = Histogram("batch", unit="ms")
    total = CLIENTS * OPS_PER_CLIENT
    naive_s = _arm_naive(conns, make_naive, naive_lat)
    batch_s = _arm_batch(conns, make_batch, batch_lat)
    return {
        "naive": {
            "elapsed_s": round(naive_s, 4),
            "ops_per_sec": round(total / naive_s, 1),
            "p50_ms": round(naive_lat.quantile(0.5), 3),
            "p99_ms": round(naive_lat.quantile(0.99), 3),
        },
        "batch": {
            "elapsed_s": round(batch_s, 4),
            "ops_per_sec": round(total / batch_s, 1),
            "frame_p50_ms": round(batch_lat.quantile(0.5), 3),
            "frame_p99_ms": round(batch_lat.quantile(0.99), 3),
        },
        "speedup": round((total / batch_s) / (total / naive_s), 2),
    }


def _sweep_point(port, n_clients, keys):
    """n_clients connections, one GET BATCH each: connect all, ship all
    frames, then harvest -- measures how the accept/coalesce path scales
    with connection count."""
    clients = [Client(port=port) for _ in range(n_clients)]
    try:
        lat = Histogram("sweep", unit="ms")
        t0 = time.perf_counter()
        rids = []
        for j, c in enumerate(clients):
            ops = [
                ("get", keys[(j * BATCH_SIZE + i) % len(keys)])
                for i in range(BATCH_SIZE)
            ]
            rids.append((c, c.send("batch", ops), time.perf_counter()))
        for c, rid, t1 in rids:
            assert all(v is not None for v in c.result(rid))
            lat.observe((time.perf_counter() - t1) * 1e3)
        elapsed = time.perf_counter() - t0
    finally:
        for c in clients:
            c.close()
    ops = n_clients * BATCH_SIZE
    return {
        "clients": n_clients,
        "ops": ops,
        "ops_per_sec": round(ops / elapsed, 1),
        "p99_ms": round(lat.quantile(0.99), 3),
    }


def test_pipelined_batch_vs_naive(workdir):
    # sized so the whole run fits the presized table and the buffer pool:
    # a thrashing cache would benchmark page faults, not the serving stack
    db = db_open(
        f"{workdir}/bench.db", "hash", "c",
        concurrent=True, nelem=80_000, cachesize=1 << 23,
    )
    keys = [b"k%d" % i for i in range(PRELOAD)]
    db.put_many([(k, VALUE) for k in keys])
    for base in range(0, PRELOAD, 512):  # warm the buffer pool
        db.get_many(keys[base : base + 512])

    st = ServerThread(db, ServerConfig(port=0), owns_db=True)
    st.start()
    try:
        conns = [Client(port=st.port) for _ in range(CLIENTS)]
        try:
            reads = _measure(
                conns,
                lambda j, i: ("get", keys[(j * OPS_PER_CLIENT + i) % PRELOAD]),
                lambda j, i: ("get", keys[(j * OPS_PER_CLIENT + i) % PRELOAD]),
            )
            writes = _measure(
                conns,
                lambda j, i: ("put", b"nw-%d-%d" % (j, i), VALUE),
                lambda j, i: ("put", b"bw-%d-%d" % (j, i), VALUE),
            )
        finally:
            for c in conns:
                c.close()

        budget = _fd_budget()
        sweep = []
        for n in SWEEP:
            if n > budget:
                sweep.append({"clients": n, "skipped": f"fd budget {budget}"})
                continue
            sweep.append(_sweep_point(st.port, n, keys))

        coalesce = st.server.registry.as_dict().get("batch", {})
    finally:
        st.stop()

    rows = [
        f"serving layer: {CLIENTS} simulated clients x {OPS_PER_CLIENT} ops "
        f"(batch frames of {BATCH_SIZE})",
        f"{'arm':<12} {'elapsed_s':>10} {'ops_sec':>10} {'p50_ms':>8} {'p99_ms':>8}",
    ]
    for label, arm in (("get/naive", reads["naive"]), ("get/batch", reads["batch"]),
                       ("put/naive", writes["naive"]), ("put/batch", writes["batch"])):
        p50 = arm.get("p50_ms", arm.get("frame_p50_ms"))
        p99 = arm.get("p99_ms", arm.get("frame_p99_ms"))
        rows.append(
            f"{label:<12} {arm['elapsed_s']:>10.3f} {arm['ops_per_sec']:>10.0f} "
            f"{p50:>8.3f} {p99:>8.3f}"
        )
    rows += [
        f"GET speedup: {reads['speedup']:.2f}x (gate: >= {MIN_GET_SPEEDUP}x)",
        f"PUT speedup: {writes['speedup']:.2f}x (floor: >= {MIN_PUT_SPEEDUP}x)",
        "",
        "connection sweep (one GET batch per client):",
    ]
    for point in sweep:
        if "skipped" in point:
            rows.append(f"  {point['clients']:>5} clients  SKIPPED ({point['skipped']})")
        else:
            rows.append(
                f"  {point['clients']:>5} clients  {point['ops_per_sec']:>10.0f} ops/s"
                f"  p99 {point['p99_ms']:.3f} ms"
            )
    emit("server", "\n".join(rows))

    emit_json(
        "server",
        {
            "label": "serve: naive vs pipelined BATCH",
            "context": {
                "clients": CLIENTS,
                "ops_per_client": OPS_PER_CLIENT,
                "batch_size": BATCH_SIZE,
                "preload": PRELOAD,
                "min_get_speedup": MIN_GET_SPEEDUP,
                "min_put_speedup": MIN_PUT_SPEEDUP,
            },
            "get": reads,
            "put": writes,
            "coalescing": coalesce,
            "sweep": sweep,
        },
    )
    assert reads["speedup"] >= MIN_GET_SPEEDUP, (
        f"pipelined BATCH gets only {reads['speedup']:.2f}x naive "
        f"(gate {MIN_GET_SPEEDUP}x)"
    )
    assert writes["speedup"] >= MIN_PUT_SPEEDUP, (
        f"pipelined BATCH puts only {writes['speedup']:.2f}x naive "
        f"(floor {MIN_PUT_SPEEDUP}x)"
    )
