"""Ablation B: LRU vs FIFO vs no-cache buffer replacement.

The paper chose LRU ("All pages in the buffer pool are linked in LRU order
to facilitate fast replacement").  This ablation quantifies the choice on a
skewed (Zipf) lookup workload where recency matters, using a pool smaller
than the table.

Expected shape: LRU <= FIFO <= no-cache in page reads.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.report import format_series_table
from repro.core.table import HashTable
from repro.workloads import dictionary_pairs, zipf_pairs

N_KEYS = 2000
N_OPS = 8000
POOL = 8 << 10  # deliberately smaller than the table


def run_once(policy: str, cachesize: int, workdir: str):
    t = HashTable.create(
        f"{workdir}/abl-{policy}-{cachesize}.db",
        bsize=256,
        ffactor=8,
        nelem=N_KEYS,
        cachesize=cachesize,
        buffer_policy=policy,
    )
    for k, v in dictionary_pairs(N_KEYS):
        t.put(k, v)
    t.sync()
    base_reads = t.io_stats.page_reads
    hits0, miss0 = t.pool.hits, t.pool.misses
    for k, _v in zipf_pairs(N_KEYS, N_OPS, alpha=1.1, seed=42):
        t.get(b"noise-" + k)  # mostly-miss probe keys share buckets
        t.get(k)
    reads = t.io_stats.page_reads - base_reads
    hits = t.pool.hits - hits0
    misses = t.pool.misses - miss0
    t.close()
    return reads, hits, misses


def test_ablation_buffer_policy(benchmark, workdir, scale_note):
    results = {}

    def sweep():
        results["lru"] = run_once("lru", POOL, workdir)
        results["fifo"] = run_once("fifo", POOL, workdir)
        results["none"] = run_once("lru", 0, workdir)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["lru", "fifo", "none"]
    cells = {}
    for name, (reads, hits, misses) in results.items():
        cells[(name, "page_reads")] = float(reads)
        cells[(name, "pool_hits")] = float(hits)
        cells[(name, "pool_misses")] = float(misses)
        cells[(name, "hit_rate")] = hits / max(hits + misses, 1)
    emit(
        "ablation_buffer_policy",
        format_series_table(
            f"Ablation B -- buffer replacement on a Zipf lookup mix; {scale_note}",
            "policy",
            "metric",
            rows,
            ["page_reads", "pool_hits", "pool_misses", "hit_rate"],
            cells,
        ),
    )

    # Shape: LRU beats no-cache dramatically and is at least as good as FIFO
    assert results["lru"][0] < results["none"][0]
    assert results["lru"][0] <= results["fifo"][0] * 1.1
