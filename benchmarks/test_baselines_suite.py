"""Cross-check: every baseline runs the paper's suites.

The paper shows only ndbm and hsearch numbers ("Based on the designs of
sdbm and gdbm, they are expected to perform similarly to ndbm, and we do
not show their performance numbers").  This benchmark runs them all so the
claim is checkable: sdbm and gdbm should indeed land in ndbm's
uncached-I/O regime, far above the new package's cached reads.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.adapters import (
    DynahashAdapter,
    GdbmAdapter,
    HsearchAdapter,
    NdbmAdapter,
    NewHashAdapter,
    NewHashMemoryAdapter,
    SdbmAdapter,
)
from repro.bench.report import format_series_table
from repro.bench.suites import disk_suite, memory_suite

SUBSET = 2000  # every disk baseline runs uncached; keep the sweep honest but quick


def test_all_disk_systems(benchmark, dict_pairs, scale_note, workdir):
    pairs = dict_pairs[:SUBSET]
    results = {}

    def run():
        results["hash"] = disk_suite(
            NewHashAdapter(workdir, bsize=1024, ffactor=32),
            pairs,
            nelem_hint=len(pairs),
        )
        results["ndbm"] = disk_suite(NdbmAdapter(workdir), pairs)
        results["sdbm"] = disk_suite(SdbmAdapter(workdir), pairs)
        results["gdbm"] = disk_suite(GdbmAdapter(workdir), pairs)

    benchmark.pedantic(run, rounds=1, iterations=1)

    systems = ["hash", "ndbm", "sdbm", "gdbm"]
    tests = ["create", "read", "verify", "sequential", "sequential+data"]
    cells = {}
    for sys_name in systems:
        for t in tests:
            m = results[sys_name][t]
            cells[(sys_name, t)] = float(m.io.page_io)
    emit(
        "baselines_disk_page_io",
        format_series_table(
            f"All disk systems -- page I/O per suite test ({SUBSET} dictionary keys)",
            "system",
            "test",
            systems,
            tests,
            cells,
            fmt="{:.0f}",
        ),
    )

    # the paper's expectation: the dbm-family baselines cluster together,
    # the new package's cached READ beats all of them decisively
    for other in ("ndbm", "sdbm", "gdbm"):
        assert (
            results["hash"]["read"].io.page_io
            < results[other]["read"].io.page_io / 2
        ), other


def test_all_memory_systems(benchmark, dict_pairs, scale_note, workdir):
    pairs = dict_pairs[:SUBSET]
    results = {}

    def run():
        results["hash (mem)"] = memory_suite(NewHashMemoryAdapter(workdir), pairs)
        results["hsearch"] = memory_suite(HsearchAdapter(workdir), pairs)
        results["dynahash"] = memory_suite(DynahashAdapter(workdir), pairs)

    benchmark.pedantic(run, rounds=1, iterations=1)

    systems = ["hash (mem)", "hsearch", "dynahash"]
    cells = {}
    for sys_name in systems:
        m = results[sys_name]["create/read"]
        cells[(sys_name, "user_s")] = m.user
        cells[(sys_name, "elapsed_s")] = m.elapsed
    emit(
        "baselines_memory",
        format_series_table(
            f"All memory systems -- create/read test ({SUBSET} dictionary keys)",
            "system",
            "metric",
            systems,
            ["user_s", "elapsed_s"],
            cells,
        ),
    )
    for sys_name in systems:
        assert results[sys_name]["create/read"].elapsed < 30
