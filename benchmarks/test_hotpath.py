"""Hot-path overhaul: legacy engine vs zero-copy engine, same run.

The acceptance gate of the hot-path PR (docs/PERFORMANCE.md): on the
10k-key dictionary put+get microbenchmark the current engine must reach
**>= 1.5x** the ops/sec of the pre-PR engine, with page read/write
counts unchanged or lower.  Both arms run in the same process on the
same workload, so the ratio is immune to machine speed.

The "legacy" arm is the pre-PR engine reconstructed by monkeypatching:

* ``PageView._slot`` unpacks one slot per call (no decoded-slot cache),
* ``find_inline`` compares via bytearray slice copies,
* ``BufferHeader.view`` builds a fresh ``PageView`` on every access,
* ``HashTable._fault`` re-parses the page header on every fault (no
  ``formatted`` short-circuit),
* ``get`` materializes both key and data (``get_pair``) and copies the
  probe key unconditionally,
* the storage layer's per-I/O callback is wired even with zero
  ``on_page_io`` subscribers.

Page-I/O counts are deterministic (fixed workload, LRU pool), so they
are pinned byte-exactly against the committed ``BENCH_hotpath.json``
the way ``test_trace_overhead.py`` pins flush batching; wall-clock
numbers are recorded and only the legacy/current *ratio* is gated.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

from benchmarks.conftest import REPO_ROOT, emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.buffer import BufferHeader
from repro.core.constants import BIG_FLAG, LEN_MASK, PAGE_HDR_SIZE, SLOT_SIZE
from repro.core.pages import _SLOT, PageView
from repro.core.table import HashTable
from repro.workloads.dictionary import dictionary_words

N_KEYS = 10_000
BSIZE = 1024
FFACTOR = 32
CACHESIZE = 1 << 19  # smaller than the table, so eviction I/O stays real
VALUE = b"v" * 32
BATCH = 512
MIN_SPEEDUP = 1.5

#: Deterministic per-arm counters pinned against the committed artifact.
PINNED = ("page_reads", "page_writes")


# ------------------------------------------------------- the pre-PR engine

def _legacy_slot(self, i):
    if not 0 <= i < self.nslots:
        raise IndexError(f"slot {i} out of range (nslots={self.nslots})")
    return _SLOT.unpack_from(self.buf, PAGE_HDR_SIZE + i * SLOT_SIZE)


def _legacy_find_inline(self, key):
    for i in range(self.nslots):
        off, kf, _df = _legacy_slot(self, i)
        if kf & BIG_FLAG:
            continue
        klen = kf & LEN_MASK
        if klen == len(key) and self.buf[off : off + klen] == key:
            return i
    return -1


def _legacy_iter_slots(self):
    for i in range(self.nslots):
        _off, kf, _df = _legacy_slot(self, i)
        yield i, bool(kf & BIG_FLAG)


def _legacy_view(self):
    return PageView(self.page)


def _legacy_fault(self, bufkey, *, create=False):
    hdr = self.pool.get(bufkey, create=create)
    view = PageView(hdr.page)
    if create or view.looks_uninitialized():
        view.initialize()
        if create:
            hdr.dirty = True
    return hdr


def _legacy_get_impl(self, key, default=None, *, _hash=None):
    self._check_open()
    key = bytes(key)
    self.stats.bump_gets()
    found = self._locate(self._bucket_of(key), key)
    if found is None:
        return default
    prev, hdr, slot = found
    try:
        view = PageView(hdr.page)
        if view.slot_is_big(slot):
            oaddr, klen, dlen, _prefix = view.get_big_ref(slot)
            _k, data = self.bigstore.fetch(oaddr, klen, dlen)
            return data
        return view.get_pair(slot)[1]
    finally:
        hdr.unpin()
        if prev is not None:
            prev.unpin()


@contextmanager
def legacy_engine():
    """Swap in the pre-PR hot path for the duration of the block."""
    patches = [
        (PageView, "_slot", _legacy_slot),
        (PageView, "find_inline", _legacy_find_inline),
        (PageView, "iter_slots", _legacy_iter_slots),
        (BufferHeader, "view", _legacy_view),
        (HashTable, "_fault", _legacy_fault),
        (HashTable, "_get_impl", _legacy_get_impl),
    ]
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _fn in patches]
    for cls, name, fn in patches:
        setattr(cls, name, fn)
    try:
        yield
    finally:
        for cls, name, fn in saved:
            setattr(cls, name, fn)


# ------------------------------------------------------------------- arms

def _make_table(workdir: str, tag: str) -> HashTable:
    return HashTable.create(
        os.path.join(workdir, f"hotpath-{tag}.db"),
        bsize=BSIZE, ffactor=FFACTOR, cachesize=CACHESIZE,
        observability=False,
    )


def _finish(table: HashTable, words, elapsed: float) -> dict:
    """Untimed epilogue shared by every arm: spot-check correctness, sync,
    and read the deterministic I/O counters."""
    assert len(table) == len(words)
    for w in words[::997]:
        assert table.get(w) == VALUE
    table.sync()
    io = table.io_stats.snapshot()
    return {
        "ops_per_sec": round(2 * len(words) / elapsed, 1),
        "page_reads": io.page_reads,
        "page_writes": io.page_writes,
    }


def _sweep_single(workdir: str, tag: str, words, legacy_wiring: bool = False) -> dict:
    table = _make_table(workdir, tag)
    try:
        if legacy_wiring:
            # Pre-PR: the per-I/O Python callback was installed even with
            # zero on_page_io subscribers.
            table._file.on_page_io = table._page_io_event
        put, get = table.put, table.get
        t0 = time.perf_counter()
        for w in words:
            put(w, VALUE)
        for w in words:
            get(w)
        elapsed = time.perf_counter() - t0
        return _finish(table, words, elapsed)
    finally:
        table.close()


def _sweep_batched(workdir: str, words) -> dict:
    table = _make_table(workdir, "batched")
    try:
        pairs = [(w, VALUE) for w in words]
        t0 = time.perf_counter()
        for i in range(0, len(pairs), BATCH):
            table.put_many(pairs[i : i + BATCH])
        for i in range(0, len(words), BATCH):
            table.get_many(words[i : i + BATCH])
        elapsed = time.perf_counter() - t0
        return _finish(table, words, elapsed)
    finally:
        table.close()


def _sweep_bulk(workdir: str, words) -> dict:
    table = _make_table(workdir, "bulk")
    splits = []
    table.hooks.subscribe("on_split", splits.append)
    try:
        pairs = [(w, VALUE) for w in words]
        t0 = time.perf_counter()
        table.bulk_load(pairs)
        for i in range(0, len(words), BATCH):
            table.get_many(words[i : i + BATCH])
        elapsed = time.perf_counter() - t0
        out = _finish(table, words, elapsed)
        out["splits"] = len(splits)
        return out
    finally:
        table.close()


# ------------------------------------------------------------------ tests

def test_hotpath_snapshot(workdir):
    words = dictionary_words(N_KEYS)
    assert len(words) == N_KEYS

    # Load the committed artifact *before* this run overwrites it: the
    # deterministic counters below are compared against it (the drift
    # gate CI re-runs; absent on the very first generation).
    recorded = None
    path = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
    if os.path.exists(path):
        with open(path) as fh:
            recorded = json.load(fh)["stat"]

    _sweep_single(workdir, "warmup", words)  # page cache, bytecode, buckets

    with legacy_engine():
        legacy = _sweep_single(workdir, "legacy", words, legacy_wiring=True)
    current = _sweep_single(workdir, "current", words)
    batched = _sweep_batched(workdir, words)
    bulk = _sweep_bulk(workdir, words)

    speedup = current["ops_per_sec"] / legacy["ops_per_sec"]

    payload = registry_snapshot(
        {
            "legacy": legacy,
            "current": current,
            "batched": batched,
            "bulk": bulk,
            "speedup_current_vs_legacy": round(speedup, 2),
            "put_get_time_saved_pct": pct_change(
                1.0 / legacy["ops_per_sec"], 1.0 / current["ops_per_sec"]
            ),
        },
        label="10k-key dictionary put+get: pre-PR engine vs zero-copy engine",
        context={
            "n_keys": N_KEYS,
            "bsize": BSIZE,
            "ffactor": FFACTOR,
            "cachesize": CACHESIZE,
            "batch": BATCH,
            "note": (
                "legacy arm is the pre-PR engine via monkeypatch (per-slot "
                "unpack, fresh views, no formatted short-circuit); page I/O "
                "counts are deterministic and pinned, wall-clock arms are "
                "recorded but only the in-run speedup ratio is gated"
            ),
        },
    )
    emit_json("hotpath", payload)

    # -- gates ------------------------------------------------------------
    # Acceptance: >= 1.5x ops/sec against the pre-PR engine, same run.
    assert speedup >= MIN_SPEEDUP, (
        f"hot-path speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate "
        f"(legacy {legacy['ops_per_sec']}, current {current['ops_per_sec']})"
    )
    # Zero-copy must not change what hits storage: unchanged or lower.
    for field in PINNED:
        assert current[field] <= legacy[field], (
            f"I/O regression: current {field}={current[field]} > "
            f"legacy {field}={legacy[field]}"
        )
    # Batched/bulk I/O counts differ from the single-op arm only through
    # eviction order (bucket-grouped access vs key order under a cache
    # smaller than the table); they are pinned by the drift gate below,
    # and the lock/pin amortization itself is asserted deterministically
    # in tests/core/test_batch_ops.py.  The bulk loader must never split.
    assert bulk["splits"] == 0
    # Drift gate: deterministic counters must match the committed
    # artifact exactly -- the zero-copy path must not change what hits
    # storage from one revision to the next.
    if recorded is not None:
        now = {"legacy": legacy, "current": current,
               "batched": batched, "bulk": bulk}
        for arm, counts in now.items():
            for field in PINNED:
                assert counts[field] == recorded[arm][field], (
                    f"I/O drift in {arm}: {field} {counts[field]} != "
                    f"recorded {recorded[arm][field]}"
                )
        assert bulk["splits"] == recorded["bulk"]["splits"] == 0
