"""Churn benchmark: space reclamation under insert/delete cycles.

The 1991 package never shrinks: delete 90% of a table and the file keeps
every page it grew.  This benchmark drives the same churn through four
configurations and records file size and lookup page reads as the tracked
``BENCH_churn.json`` artifact:

- **grown** -- the table right after the insert phase;
- **no reclamation** -- post-delete with ``min_fill=0`` (paper behaviour);
- **contraction** -- post-delete with ``min_fill=0.5`` (merges + freelist);
- **compacted** -- the contracted table after online ``compact()``;
- **pristine** -- a fresh presized ``bulk_load`` of the survivors, the
  lower bound the compacted file is gated against.

Gates (CI fails if they regress):

- contraction merges buckets and frees their pages for reuse, and holds
  the file at a steady size across repeated churn cycles;
- the compacted file is within 1.25x of pristine;
- looking up every survivor costs *exactly* the same page reads in the
  compacted and pristine files;
- a crash sweep over grow -> contract -> compact -> grow loses zero
  committed writes (summarised from the same fault-injection contract as
  ``tests/test_churn_crash.py``).

Scale: 8 000 inserts / 7 200 deletes by default; ``REPRO_FULL=1`` runs the
issue's full 100 000 / 90 000.
"""

from __future__ import annotations

import os

from benchmarks.conftest import FULL, emit, emit_json
from repro.bench.report import pct_change, registry_snapshot
from repro.core.table import HashTable

N = 100_000 if FULL else 8_000
DEL = int(N * 0.9)
BSIZE = 1024

PAIRS = [(f"churn{i:06d}".encode(), f"v{i:06d}".encode() * 4) for i in range(N)]
SURVIVORS = PAIRS[DEL:]


def _snapshot(path: str) -> dict:
    """File size plus the page reads needed to look up every survivor."""
    t = HashTable.open_file(path, readonly=True)
    try:
        for k, v in SURVIVORS:
            assert t.get(k) == v
        reads = t.io_stats.page_reads
        pages = t._file.npages()
    finally:
        t.close()
    return {
        "file_pages": pages,
        "file_bytes": os.path.getsize(path),
        "lookup_page_reads": reads,
    }


def _churned_table(path: str, min_fill: float) -> dict:
    """Insert N, sync, delete DEL; returns the grown-state measurements."""
    t = HashTable.create(path, bsize=BSIZE, min_fill=min_fill)
    try:
        t.put_many(PAIRS)
        t.sync()
        grown = {
            "file_pages": t._file.npages(),
            "file_bytes": t._file.size_bytes(),
        }
        for k, _ in PAIRS[:DEL]:
            t.delete(k)
        grown["merges"] = t.stats.merges
        grown["pages_freed"] = t.stats.pages_freed
        grown["freelist_pages"] = len(t._file.freelist)
    finally:
        t.close()
    return grown


def _cycle_sizes(path: str, min_fill: float, cycles: int = 3) -> list:
    """File pages at the end of each insert+delete churn cycle."""
    t = HashTable.create(path, bsize=BSIZE, min_fill=min_fill)
    sizes = []
    try:
        for _ in range(cycles):
            t.put_many(PAIRS)
            for k, _ in PAIRS[:DEL]:
                t.delete(k)
            t.sync()
            sizes.append(t._file.npages())
    finally:
        t.close()
    return sizes


def _crash_sweep_summary(workdir: str) -> dict:
    """Small-scale version of the tests/test_churn_crash.py contract: a
    crash at every I/O op across grow -> contract -> compact -> grow must
    lose zero committed writes."""
    from tests.test_churn_crash import (
        CLEAN_ERRORS,
        check_contract,
        run_churn_workload,
    )

    total_ops = run_churn_workload(os.path.join(workdir, "calib.db"))
    swept = 0
    for mode in ("crash", "torn"):
        for n in range(total_ops):
            path = os.path.join(workdir, f"sweep-{mode}-{n}.db")
            progress: list[str] = []
            try:
                run_churn_workload(path, fail_after=n, mode=mode, progress=progress)
            except CLEAN_ERRORS:
                pass
            # check_contract asserts on any lost committed write; reaching
            # the next iteration means this crash point lost nothing
            check_contract(path, progress)
            swept += 1
    return {
        "modes": ["crash", "torn"],
        "crash_points_per_mode": total_ops,
        "sweep_points_checked": swept,
        "lost_committed_writes": 0,
    }


def test_churn_reclamation_snapshot(workdir):
    # paper behaviour: min_fill=0 never contracts -- the churned file
    # keeps every page the insert phase grew
    paper_path = os.path.join(workdir, "paper.db")
    grown = _churned_table(paper_path, min_fill=0.0)
    paper = _snapshot(paper_path)
    assert paper["file_pages"] >= grown["file_pages"]

    # contraction: the same churn with a utilization floor
    contract_path = os.path.join(workdir, "contract.db")
    contracted_grown = _churned_table(contract_path, min_fill=0.5)
    contracted = _snapshot(contract_path)
    assert contracted_grown["merges"] > 0
    assert contracted_grown["pages_freed"] > 0
    assert contracted_grown["freelist_pages"] > 0

    # "contraction stops file growth": repeated churn cycles reach a
    # steady state because merged buckets feed re-expansion via the
    # freelist instead of extending the file
    cycle_sizes = _cycle_sizes(os.path.join(workdir, "cycles.db"), 0.5)
    assert max(cycle_sizes[1:]) <= cycle_sizes[0] * 1.05

    # online compaction on top of contraction
    t = HashTable.open_file(contract_path, min_fill=0.5)
    try:
        report = t.compact()
    finally:
        t.close()
    compacted = _snapshot(contract_path)
    assert report["pages_reclaimed"] > 0

    # lower bound: a fresh presized bulk_load of the survivors
    pristine_path = os.path.join(workdir, "pristine.db")
    p = HashTable.create(pristine_path, bsize=BSIZE)
    p.bulk_load(SURVIVORS, nelem=len(SURVIVORS))
    p.close()
    pristine = _snapshot(pristine_path)

    # the issue's gates
    assert compacted["file_bytes"] <= 1.25 * pristine["file_bytes"]
    assert compacted["lookup_page_reads"] == pristine["lookup_page_reads"]

    crash = _crash_sweep_summary(workdir)
    assert crash["lost_committed_writes"] == 0

    rows = [
        ("grown", grown["file_pages"], grown["file_bytes"], "-"),
        ("churned, min_fill=0 (paper)", paper["file_pages"],
         paper["file_bytes"], paper["lookup_page_reads"]),
        ("churned, min_fill=0.5", contracted["file_pages"],
         contracted["file_bytes"], contracted["lookup_page_reads"]),
        ("after compact()", compacted["file_pages"],
         compacted["file_bytes"], compacted["lookup_page_reads"]),
        ("pristine bulk_load", pristine["file_pages"],
         pristine["file_bytes"], pristine["lookup_page_reads"]),
    ]
    lines = [
        f"churn: {N} inserts / {DEL} deletes, bsize={BSIZE}"
        + ("" if FULL else "  (REPRO_FULL=1 for 100000/90000)"),
        f"steady-state pages over {len(cycle_sizes)} churn cycles: "
        + " -> ".join(str(s) for s in cycle_sizes),
        f"{'configuration':<30} {'pages':>8} {'bytes':>12} {'lookup reads':>12}",
    ]
    for name, pages, nbytes, reads in rows:
        lines.append(f"{name:<30} {pages:>8} {nbytes:>12} {reads!s:>12}")
    emit("churn", "\n".join(lines))

    payload = registry_snapshot(
        {
            "grown": grown,
            "churned_paper": paper,
            "churned_contraction": contracted,
            "compacted": compacted,
            "pristine": pristine,
            "compact_report": report,
            "cycle_file_pages": cycle_sizes,
            "contraction": {
                "merges": contracted_grown["merges"],
                "pages_freed": contracted_grown["pages_freed"],
                "freelist_pages": contracted_grown["freelist_pages"],
            },
            "contraction_reclaim_pct": pct_change(
                paper["file_bytes"], contracted["file_bytes"]
            ),
            "compact_reclaim_pct": pct_change(
                paper["file_bytes"], compacted["file_bytes"]
            ),
            "compact_vs_pristine_ratio": (
                compacted["file_bytes"] / pristine["file_bytes"]
            ),
            "crash_sweep": crash,
        },
        label="insert/delete churn: contraction + compaction vs paper policy",
        context={
            "n_inserts": N,
            "n_deletes": DEL,
            "bsize": BSIZE,
            "min_fill": 0.5,
            "full_scale": FULL,
        },
    )
    emit_json("churn", payload)
