"""Ablation A: the hybrid split schedule (the paper's design choice).

"The dbm family of algorithms decide dynamically which bucket to split and
when to split it (when it overflows) while dynahash splits in a predefined
order ... and at a predefined time (when the table fill factor is
exceeded).  We use a hybrid of these techniques."

We run the dictionary create+read workload under three split policies:

- ``controlled``   -- fill-factor only (dynahash's schedule);
- ``uncontrolled`` -- overflow only (the dbm-style trigger, in linear order);
- ``hybrid``       -- both (the paper's package).

Expected shape: with a fill factor that is too high for the page size
(Equation 1 violated), controlled-only splitting leaves long overflow
chains and pays for them on every lookup; hybrid fixes that by splitting on
overflow too.  With a sane fill factor the three behave similarly -- the
hybrid is never much worse than the best policy.
"""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CACHE, emit
from repro.bench.report import format_series_table
from repro.bench.timing import measure
from repro.core.table import HashTable

POLICIES = ["controlled", "uncontrolled", "hybrid"]
#: (bsize, ffactor): a sane pairing and an Equation-1-violating pairing
CONFIGS = [(256, 8), (256, 64)]


def run_once(pairs, bsize, ffactor, policy):
    def body():
        t = HashTable.create(
            None,
            bsize=bsize,
            ffactor=ffactor,
            cachesize=SWEEP_CACHE,
            split_policy=policy,
        )
        for k, v in pairs:
            t.put(k, v)
        for k, _v in pairs:
            t.get(k)
        ovfl = t.stats.ovfl_pages_linked
        nbuckets = t.nbuckets
        t.close()  # close flushes: count its writes too
        return t.io_stats.snapshot(), ovfl, nbuckets

    (io, ovfl, nbuckets), m = measure(body)
    m.io = io
    return m, ovfl, nbuckets


def test_ablation_split_policy(benchmark, dict_pairs, scale_note):
    results = {}

    def sweep():
        for bsize, ffactor in CONFIGS:
            for policy in POLICIES:
                results[(bsize, ffactor, policy)] = run_once(
                    dict_pairs, bsize, ffactor, policy
                )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"{b}/{f}/{p}" for b, f in CONFIGS for p in POLICIES]
    cells = {}
    for (b, f, p), (m, ovfl, nbuckets) in results.items():
        row = f"{b}/{f}/{p}"
        cells[(row, "user_s")] = m.user
        cells[(row, "page_io")] = float(m.io.page_io)
        cells[(row, "ovfl_pages")] = float(ovfl)
        cells[(row, "buckets")] = float(nbuckets)
    emit(
        "ablation_split_policy",
        format_series_table(
            f"Ablation A -- split policies (bsize/ffactor/policy); {scale_note}",
            "config",
            "metric",
            rows,
            ["user_s", "page_io", "ovfl_pages", "buckets"],
            cells,
        ),
    )

    # Shape: at the Equation-1-violating config, hybrid allocates fewer
    # overflow pages than controlled-only (it splits its way out of chains)
    _m_c, ovfl_controlled, _n = results[(256, 64, "controlled")]
    _m_h, ovfl_hybrid, _n2 = results[(256, 64, "hybrid")]
    assert ovfl_hybrid <= ovfl_controlled
    # and hybrid's lookup cost is never much worse than the best policy
    users = {p: results[(256, 8, p)][0].user for p in POLICIES}
    assert users["hybrid"] <= min(users.values()) * 2.5 + 0.05
