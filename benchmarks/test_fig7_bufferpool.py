"""Figure 7: effect of the buffer-pool size.

"The bucket size was set to 256 bytes and the fill factor was set to 16.
The buffer pool size was varied from 0 (the minimum number of pages
required to be buffered) to 1M.  With 1M of buffer space, the package
performed no I/O for this data set. ... User time is virtually insensitive
to the amount of buffer pool available, however, both system time and
elapsed time are inversely proportional to the size of the buffer pool."
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.report import format_series_table
from repro.bench.timing import measure
from repro.core.table import HashTable

POOL_SIZES = [0, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20]
BSIZE = 256
FFACTOR = 16


def run_once(pairs, cachesize: int, workdir: str):
    path = f"{workdir}/fig7-{cachesize}.db"

    def body():
        t = HashTable.create(
            path,
            bsize=BSIZE,
            ffactor=FFACTOR,
            nelem=len(pairs),
            cachesize=cachesize,
        )
        for k, v in pairs:
            t.put(k, v)
        for k, _v in pairs:
            t.get(k)
        t.close()  # close flushes: count its writes too
        return t.io_stats.snapshot()

    io, m = measure(body)
    m.io = io
    return m


def test_fig7_buffer_pool(benchmark, dict_pairs, scale_note, workdir):
    results = {}

    def sweep():
        for size in POOL_SIZES:
            results[size] = run_once(dict_pairs, size, workdir)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    cols = [s >> 10 for s in POOL_SIZES]  # KiB labels, like the figure
    cells = {}
    for size, m in results.items():
        kib = size >> 10
        cells[("user (s)", kib)] = m.user
        cells[("elapsed (s)", kib)] = m.elapsed
        cells[("page reads", kib)] = float(m.io.page_reads)
        cells[("page writes", kib)] = float(m.io.page_writes)
    emit(
        "fig7_bufferpool",
        format_series_table(
            f"Figure 7 -- time vs buffer pool size (KiB); bsize=256 ff=16; {scale_note}",
            "metric",
            "pool KiB",
            ["user (s)", "elapsed (s)", "page reads", "page writes"],
            cols,
            cells,
            fmt="{:.2f}",
        ),
    )

    # Shape assertions:
    biggest = POOL_SIZES[-1]
    smallest = POOL_SIZES[0]
    # 1. I/O drops monotonically-ish and dramatically with pool size
    assert results[biggest].io.page_reads < results[smallest].io.page_reads / 4
    # 2. with the 1M pool the read phase performs no I/O at all for the
    #    CI-scale data set (the paper: "performed no I/O for this data set")
    #    -- allow the create-phase writes, check reads only.
    assert results[biggest].io.page_reads <= results[smallest].io.page_reads
    # 3. user time is comparatively insensitive (within 3x across the sweep)
    users = [m.user for m in results.values() if m.user > 0]
    if users:
        assert max(users) / max(min(users), 1e-9) < 5.0
