"""Ablation C: the provided hash functions (speed vs collision quality).

"The default function for the package is the one which offered the best
performance in terms of cycles executed per call (it did not produce the
fewest collisions although it was within a small percentage of the function
that produced the fewest collisions)."

For every provided function we measure call time over the dictionary keys
and the resulting bucket-occupancy quality (max chain and occupied
fraction at a fixed bucket count).
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.bench.report import format_series_table
from repro.core.hashfuncs import HASH_FUNCTIONS

NBUCKETS = 1024


def test_ablation_hash_functions(benchmark, dict_pairs, scale_note):
    keys = [k for k, _v in dict_pairs]
    results = {}

    def sweep():
        for name, fn in HASH_FUNCTIONS.items():
            t0 = time.perf_counter()
            values = [fn(k) for k in keys]
            elapsed = time.perf_counter() - t0
            counts = [0] * NBUCKETS
            for v in values:
                counts[v & (NBUCKETS - 1)] += 1
            occupied = sum(1 for c in counts if c)
            results[name] = (
                elapsed * 1e9 / len(keys),  # ns per call
                max(counts),
                occupied / NBUCKETS,
                len(set(values)) / len(values),  # distinct 32-bit values
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = sorted(results)
    cells = {}
    for name, (ns, maxchain, occ, distinct) in results.items():
        cells[(name, "ns/call")] = ns
        cells[(name, "max_bucket")] = float(maxchain)
        cells[(name, "occupancy")] = occ
        cells[(name, "distinct")] = distinct
    emit(
        "ablation_hashfuncs",
        format_series_table(
            f"Ablation C -- hash functions on dictionary keys; {scale_note}",
            "function",
            "metric",
            rows,
            ["ns/call", "max_bucket", "occupancy", "distinct"],
            cells,
        ),
    )

    # Shape: every low-bit-randomizing function keeps buckets balanced
    expected_per_bucket = len(keys) / NBUCKETS
    for name in ("default", "sdbm", "larson", "fnv1a", "thompson"):
        assert results[name][1] < expected_per_bucket * 8, name
    # and nearly every key gets a distinct 32-bit hash
    for name in ("default", "sdbm", "fnv1a"):
        assert results[name][3] > 0.99, name
