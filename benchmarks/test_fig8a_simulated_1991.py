"""Figure 8a on the simulated 1991 clock.

The paper's headline table is in elapsed seconds on an HP7959S disk.
Counting page I/O (test_fig8a_dictionary.py) reproduces the *ratios*;
this benchmark goes further: it replays the disk suite over
:class:`~repro.storage.simdisk.SimulatedDisk` (28 ms seeks, ~1 MB/s) and
reports modelled seconds, directly comparable to the paper's Figure 8a
column values (hash create 90.4 s, read 4.0 s; ndbm create 99.6 s,
read 21.2 s at full scale).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.baselines.dbm.ndbm import Ndbm
from repro.bench.report import format_series_table, pct_change
from repro.core.table import HashTable
from repro.storage.simdisk import SimulatedDisk


def run_hash(pairs, workdir):
    holder = {}

    def wrapper(f):
        holder["d"] = SimulatedDisk(f)
        return holder["d"]

    t = HashTable.create(
        f"{workdir}/sim.hash", bsize=1024, ffactor=32,
        nelem=len(pairs), cachesize=1 << 20, file_wrapper=wrapper,
    )
    disk = holder["d"]
    results = {}
    for k, v in pairs:
        t.put(k, v)
    t.sync()
    results["create"] = disk.sim_seconds
    mark = disk.sim_seconds
    for k, _v in pairs:
        t.get(k)
    results["read"] = disk.sim_seconds - mark
    mark = disk.sim_seconds
    for k, v in pairs:
        assert t.get(k) == v
    results["verify"] = disk.sim_seconds - mark
    t.close()
    return results


def run_ndbm(pairs, workdir):
    holder = {}

    def wrapper(f):
        holder["d"] = SimulatedDisk(f)
        return holder["d"]

    db = Ndbm(f"{workdir}/sim.ndbm", "n", block_size=1024, file_wrapper=wrapper)
    disk = holder["d"]
    results = {}
    for k, v in pairs:
        db.store(k, v)
    db.sync()
    results["create"] = disk.sim_seconds
    mark = disk.sim_seconds
    for k, _v in pairs:
        db.fetch(k)
    results["read"] = disk.sim_seconds - mark
    mark = disk.sim_seconds
    for k, v in pairs:
        assert db.fetch(k) == v
    results["verify"] = disk.sim_seconds - mark
    db.close()
    return results


def test_fig8a_simulated_1991_clock(benchmark, dict_pairs, scale_note, workdir):
    results = {}

    def run():
        results["hash"] = run_hash(dict_pairs, workdir)
        results["ndbm"] = run_ndbm(dict_pairs, workdir)

    benchmark.pedantic(run, rounds=1, iterations=1)

    tests = ["create", "read", "verify"]
    cells = {}
    for name in ("hash", "ndbm"):
        for test in tests:
            cells[(name, test)] = results[name][test]
    for test in tests:
        cells[("%change", test)] = pct_change(
            results["ndbm"][test], results["hash"][test]
        )
    emit(
        "fig8a_simulated_1991",
        format_series_table(
            "Figure 8a on the simulated HP7959S clock (modelled seconds); "
            + scale_note,
            "system",
            "test",
            ["hash", "ndbm", "%change"],
            tests,
            cells,
        ),
    )

    # The paper's elapsed-time shape: hash wins create modestly (writes
    # dominate both) and wins read/verify big (caching vs re-reads).
    assert results["hash"]["create"] < results["ndbm"]["create"]
    assert results["hash"]["read"] < results["ndbm"]["read"] / 2
    assert results["hash"]["verify"] < results["ndbm"]["verify"] / 2
