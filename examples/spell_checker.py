#!/usr/bin/env python3
"""A spell checker backed by the hash package (the dictionary workload).

The paper's conclusion urges that "applications such as the loader,
compiler, and mail, which currently implement their own hashing routines,
should be modified to use the generic routines" -- spell(1) is the classic
dictionary-shaped example.  We build the word list once into a hash file,
then check documents against it with cached lookups.

Run: ``python examples/spell_checker.py``
"""

import os
import re
import tempfile

import repro
from repro.workloads import dictionary_words

N_WORDS = 10_000


def build_dictionary(path: str) -> None:
    words = dictionary_words(N_WORDS)
    # Equation 1: pick parameters from the data's average pair size.
    avg = sum(len(w) for w in words) // len(words) + 1  # value is b"1"
    bsize, ffactor = repro.suggest_parameters(avg, bsize=1024)
    db = repro.HashTable.create(
        path, bsize=bsize, ffactor=ffactor, nelem=len(words)
    )
    for w in words:
        db.put(w, b"1")
    db.sync()
    print(
        f"dictionary: {len(db)} words, bsize={bsize} ffactor={ffactor}, "
        f"{db.nbuckets} buckets, file={os.path.getsize(path)} bytes"
    )
    db.close()


def check_document(db: repro.HashTable, text: str) -> list[str]:
    """Return the words not found in the dictionary."""
    seen = set()
    misses = []
    for token in re.findall(r"[a-z]+", text.lower()):
        if token in seen:
            continue
        seen.add(token)
        if db.get(token.encode()) is None:
            misses.append(token)
    return misses


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "words.db")
        build_dictionary(path)

        db = repro.HashTable.open_file(path, readonly=True, cachesize=1 << 20)
        words = dictionary_words(N_WORDS)
        sample = b" ".join(words[100:130]).decode()
        document = sample + " definitelymisspelled qwrtzy " + sample
        misses = check_document(db, document)
        print(f"document of {len(document.split())} tokens")
        print(f"unknown words: {misses}")
        assert misses == ["definitelymisspelled", "qwrtzy"]

        stats = db.io_stats
        print(f"lookup I/O: {stats.page_reads} page reads (cached after warm-up)")
        db.close()


if __name__ == "__main__":
    main()
