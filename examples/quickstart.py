#!/usr/bin/env python3
"""Quickstart: the four faces of the hashing package.

1. the dict-like convenience API (``repro.open``),
2. first-class cursors and the built-in observability layer,
3. the native byte-level engine (``repro.HashTable``),
4. the ndbm- and hsearch-compatible interfaces.

Run: ``python examples/quickstart.py``
"""

import os
import tempfile

import repro
from repro.core.compat.hsearch import ENTER, FIND, HsearchCompat
from repro.core.compat.ndbm import DBM_INSERT, dbm_open


def dict_like_api(path: str) -> None:
    print("== dict-like API ==")
    db = repro.open(path, "c", bsize=1024, ffactor=32)
    db["apple"] = "malus domestica"
    db["banana"] = "musa acuminata"
    db[b"cherry"] = b"prunus avium"  # bytes work too
    print(f"  apple  -> {db['apple'].decode()}")
    print(f"  len    -> {len(db)}")
    del db["banana"]
    print(f"  after del: banana present? {'banana' in db}")
    db.close()

    # reopen read-only and iterate
    with repro.open(path, "r") as db:
        for key in sorted(db):
            print(f"  scan   -> {key.decode()}")


def cursors_and_observability(path: str) -> None:
    print("== cursors and observability ==")
    with repro.open(path, type="btree") as db:
        for name in ("adams", "baker", "clark", "davis", "evans"):
            db[name] = f"room for {name}"

        # any number of independent cursors may scan at once; btree
        # cursors support seek/last/prev in addition to first/next
        with db.cursor() as cur:
            k, v = cur.seek(b"c")  # at-or-after: lands on clark
            print(f"  seek('c') -> {k.decode()}")
            print(f"  next      -> {cur.next()[0].decode()}")
            print(f"  last      -> {db.cursor().last()[0].decode()}")

        # every database keeps a metrics tree: operation counts, latency
        # quantiles, buffer-pool behaviour, page I/O
        for name in ("adams", "clark", "evans"):
            db[name]
        st = db.stat()
        ops = st["ops"]["counts"]
        print(f"  stat: {st['nkeys']} keys, {ops['puts']} puts, "
              f"get p95 {st['ops']['latency']['get']['p95'] * 1e6:.1f}us, "
              f"{st['buffer']['hits']} buffer hits")

        # trace hooks fire on structural events (splits, evictions, ...)
        db.hooks.subscribe(
            "on_split", lambda p: print(f"  split! {p['old_bucket']} -> "
                                        f"{p['new_bucket']} ({p['reason']})")
        )


def native_api(path: str) -> None:
    print("== native HashTable API ==")
    # Parameters straight from the paper: page size, fill factor, expected
    # element count (pre-sizes the table), cache budget, hash function.
    table = repro.HashTable.create(
        path,
        bsize=256,
        ffactor=8,
        nelem=1000,
        cachesize=64 * 1024,
        hashfn="default",
    )
    for i in range(1000):
        table.put(f"key-{i:04d}".encode(), f"value-{i}".encode())
    print(f"  stored {len(table)} pairs in {table.nbuckets} buckets")
    print(f"  fill ratio {table.fill_ratio():.2f} (ffactor 8)")
    print(f"  key-0042 -> {table.get(b'key-0042').decode()}")

    # large pairs are fine: they go to overflow-page chains transparently
    table.put(b"big", os.urandom(100_000))
    print(f"  100KB value stored and read back: {len(table.get(b'big'))} bytes")

    # sequential access, ndbm style
    first = table.first_key()
    print(f"  first_key -> {first!r}")
    table.sync()
    stats = table.io_stats
    print(f"  page I/O so far: {stats.page_reads} reads, {stats.page_writes} writes")
    table.close()


def compat_apis(path: str) -> None:
    print("== ndbm compatibility ==")
    with dbm_open(path, "n") as db:
        db.store(b"key", b"value")
        db.store(b"key", b"other", DBM_INSERT)  # refused: key exists
        print(f"  fetch  -> {db.fetch(b'key')}")
        print(f"  firstkey -> {db.firstkey()}")

    print("== hsearch compatibility ==")
    t = HsearchCompat(nelem=100)
    t.hsearch(b"login", b"margo", ENTER)
    print(f"  FIND login -> {t.hsearch(b'login', None, FIND)}")
    # unlike System V, the table grows past nelem without failing
    for i in range(1000):
        t.hsearch(f"extra-{i}".encode(), b"x", ENTER)
    print(f"  grew to {t.table.nkeys} entries (nelem was 100)")
    t.hdestroy()


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        dict_like_api(os.path.join(d, "quick.db"))
        cursors_and_observability(os.path.join(d, "obs.db"))
        native_api(os.path.join(d, "native.db"))
        compat_apis(os.path.join(d, "compat.db"))
    print("quickstart done.")


if __name__ == "__main__":
    main()
