#!/usr/bin/env python3
"""Migrating a legacy ndbm database to the new hashing package.

The paper positions the new package as a drop-in superset of ndbm.  This
example creates a database with the *real* Thompson-algorithm ndbm
baseline (``.pag``/``.dir`` file pair), then migrates it through the two
interfaces into a single new-format file -- and shows the two wins along
the way: a record too large for ndbm, and cached read I/O.

Run: ``python examples/migrate_dbm.py``
"""

import os
import tempfile

from repro.baselines.dbm import DbmError, Ndbm
from repro.core.compat.ndbm import dbm_open
from repro.workloads import passwd_pairs


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        legacy_base = os.path.join(d, "legacy")
        new_path = os.path.join(d, "modern.db")

        # 1. Build the legacy database with real ndbm behaviour.
        legacy = Ndbm(legacy_base, "n", block_size=1024)
        count = 0
        for k, v in passwd_pairs():
            legacy.store(k, v)
            count += 1
        legacy.sync()
        print(f"legacy ndbm: {count} records in {legacy_base}.pag/.dir")

        # ndbm cannot store a pair bigger than its block:
        big_value = b"x" * 4096
        try:
            legacy.store(b"bigrecord", big_value)
        except DbmError as exc:
            print(f"legacy ndbm refuses the big record: {exc}")

        # 2. Migrate via the compatible interfaces (same verbs both sides).
        modern = dbm_open(new_path, "n", bsize=1024, ffactor=32, nelem=count)
        migrated = 0
        key = legacy.firstkey()
        while key is not None:
            modern.store(key, legacy.fetch(key))
            migrated += 1
            key = legacy.nextkey()
        legacy.close()
        print(f"migrated {migrated} records into {new_path} (single file)")

        # 3. The new package takes the big record without complaint.
        modern.store(b"bigrecord", big_value)
        assert modern.fetch(b"bigrecord") == big_value
        print("big record stored fine in the new package")

        # 4. Verify and compare read I/O.
        reads_before = modern.table.io_stats.page_reads
        for k, v in passwd_pairs():
            assert modern.fetch(k) == v
        delta = modern.table.io_stats.page_reads - reads_before
        print(f"full verification pass cost {delta} page reads (cached)")
        modern.close()


if __name__ == "__main__":
    main()
