#!/usr/bin/env python3
"""Password-file lookups: the paper's small-database workload.

The paper's second benchmark dataset came from a password file: one record
keyed by account name (data = rest of the passwd entry) and one keyed by
uid (data = whole entry).  This is exactly how 4.4BSD's ``pwd_mkdb`` used
this hashing package to back ``getpwnam``/``getpwuid`` -- this example is
that tool in miniature.

Run: ``python examples/password_lookup.py``
"""

import os
import tempfile

import repro
from repro.workloads import passwd_accounts


def build_passwd_db(path: str) -> None:
    """pwd_mkdb: compile the passwd 'file' into a hash database."""
    accounts = passwd_accounts()
    db = repro.HashTable.create(path, bsize=1024, ffactor=32,
                                nelem=2 * len(accounts))
    for name, uid, entry in accounts:
        rest = entry[len(name) + 1 :]
        db.put(b"name:" + name.encode(), rest.encode())
        db.put(b"uid:" + str(uid).encode(), entry.encode())
    db.sync()
    stats = db.io_stats
    print(
        f"built {path} with {len(db)} records in {db.nbuckets} buckets "
        f"({stats.page_writes} page writes)"
    )
    db.close()


def getpwnam(db: repro.HashTable, name: str) -> str | None:
    rest = db.get(b"name:" + name.encode())
    return None if rest is None else f"{name}:{rest.decode()}"


def getpwuid(db: repro.HashTable, uid: int) -> str | None:
    entry = db.get(b"uid:" + str(uid).encode())
    return None if entry is None else entry.decode()


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "passwd.db")
        build_passwd_db(path)

        # Reopen read-only, as login(1) would.
        db = repro.HashTable.open_file(path, readonly=True)
        accounts = passwd_accounts()
        some = accounts[:3] + accounts[-2:]
        for name, uid, entry in some:
            by_name = getpwnam(db, name)
            by_uid = getpwuid(db, uid)
            assert by_name == entry, (by_name, entry)
            assert by_uid == entry
            print(f"  {name:12s} uid={uid:<5d} shell={entry.rsplit(':', 1)[1]}")
        print(f"  getpwnam('nosuchuser') -> {getpwnam(db, 'nosuchuser')}")

        # The whole database fits in the default 64K cache: lookups after
        # warm-up do no I/O (the paper's caching argument vs dbm).
        reads_before = db.io_stats.page_reads
        for name, uid, _entry in accounts:
            getpwnam(db, name)
            getpwuid(db, uid)
        print(
            f"  600 warm lookups cost "
            f"{db.io_stats.page_reads - reads_before} page reads"
        )
        db.close()


if __name__ == "__main__":
    main()
