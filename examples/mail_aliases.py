#!/usr/bin/env python3
"""A sendmail-style alias database.

The paper's conclusion names mail as an application that "should be
modified to use the generic routines" -- sendmail did exactly that: its
``newaliases`` compiled ``/etc/aliases`` into a dbm database.  This
example builds the alias db through the ndbm-compatible interface (so the
code looks like 1991 sendmail) and resolves aliases transitively, with
the new package's guarantees: unlimited alias expansions (dbm's page
limit is gone) and cached lookups.

Run: ``python examples/mail_aliases.py``
"""

import os
import tempfile

from repro.core.compat.ndbm import dbm_open

ALIASES = """
# /etc/aliases -- classic shape
postmaster: margo
webmaster: oz
staff: margo, oz, keith, mike
root: postmaster
abuse: postmaster
everyone: staff, guests
guests: visitor1, visitor2
"""


def newaliases(aliases_text: str, db_path: str) -> int:
    """Compile the aliases file into the database (sendmail's newaliases)."""
    count = 0
    with dbm_open(db_path, "n") as db:
        for line in aliases_text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _colon, targets = line.partition(":")
            db.store(name.strip().encode(), targets.strip().encode())
            count += 1
    return count


def resolve(db, address: str, _depth: int = 0) -> set[str]:
    """Expand an address transitively (sendmail's alias expansion)."""
    if _depth > 16:
        raise RuntimeError(f"alias loop at {address!r}")
    targets = db.fetch(address.encode())
    if targets is None:
        return {address}  # a real mailbox
    out: set[str] = set()
    for target in targets.decode().split(","):
        out |= resolve(db, target.strip(), _depth + 1)
    return out


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "aliases.db")
        n = newaliases(ALIASES, path)
        print(f"newaliases: {n} aliases compiled into {os.path.basename(path)}")

        with dbm_open(path, "r") as db:
            for addr in ("postmaster", "root", "everyone", "oz"):
                mailboxes = sorted(resolve(db, addr))
                print(f"  {addr:12s} -> {', '.join(mailboxes)}")

        # the enhancement over real dbm: an alias bigger than a disk block
        big_list = ", ".join(f"user{i}" for i in range(500))
        with dbm_open(path, "w") as db:
            db.store(b"bigteam", big_list.encode())
            expanded = resolve(db, "bigteam")
            print(f"  bigteam      -> {len(expanded)} mailboxes "
                  "(larger than any dbm page; stored fine)")


if __name__ == "__main__":
    main()
