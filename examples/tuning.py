#!/usr/bin/env python3
"""Table parameterization: Equation 1 in practice.

"If the user knows the average size of the key/data pairs being stored in
the table, near optimal bucket sizes and fill factors may be selected by
applying the equation: ((average_pair_length + 4) * ffactor) >= bsize" --
and "For highly time critical applications, experimenting with different
bucket sizes and fill factors is encouraged."

This example measures a small parameter sweep on your data's shape and
prints the paper-style recommendation (a miniature of Figure 5).

Run: ``python examples/tuning.py``
"""

import time

import repro
from repro.workloads import average_pair_length, dictionary_pairs

N = 4000


def run_config(pairs, bsize: int, ffactor: int) -> tuple[float, int, float]:
    t = repro.HashTable.create(
        None, bsize=bsize, ffactor=ffactor, nelem=len(pairs), cachesize=1 << 20
    )
    t0 = time.perf_counter()
    for k, v in pairs:
        t.put(k, v)
    for k, _v in pairs:
        t.get(k)
    elapsed = time.perf_counter() - t0
    # the observability layer gives per-operation latency quantiles for
    # free -- the wall-clock column above can hide a bad tail
    get_p95 = t.stat()["ops"]["latency"]["get"]["p95"]
    t.close()
    return elapsed, t.io_stats.page_io, get_p95


def main() -> None:
    pairs = list(dictionary_pairs(N))
    avg = average_pair_length(pairs)
    print(f"workload: {N} pairs, average pair length {avg:.1f} bytes")

    rec_bsize, rec_ffactor = repro.suggest_parameters(int(avg), bsize=256)
    print(
        f"Equation 1 recommendation for bsize=256: ffactor >= {rec_ffactor} "
        f"(({int(avg)}+4)*{rec_ffactor} >= 256)"
    )

    print(
        f"\n{'bsize':>6} {'ffactor':>8} {'eq1 ok':>7} {'seconds':>9} "
        f"{'page I/O':>9} {'get p95':>9}"
    )
    best_io = None
    for bsize in (128, 256, 1024):
        for ffactor in (2, 8, 32):
            ok = (avg + 4) * ffactor >= bsize
            elapsed, page_io, get_p95 = run_config(pairs, bsize, ffactor)
            marker = "yes" if ok else "no"
            print(
                f"{bsize:>6} {ffactor:>8} {marker:>7} {elapsed:>9.3f} "
                f"{page_io:>9} {get_p95 * 1e6:>8.1f}u"
            )
            if best_io is None or page_io < best_io[0]:
                best_io = (page_io, bsize, ffactor, ok)

    print(
        f"\nlowest page I/O (what matters once the table outgrows the "
        f"cache): bsize={best_io[1]} ffactor={best_io[2]} "
        f"({best_io[0]} transfers, Equation 1 "
        f"{'satisfied' if best_io[3] else 'violated'})"
    )
    print(
        "within each bucket size, I/O stops improving right where "
        "Equation 1 flips to 'yes' -- the paper's Figure 5 conclusion"
    )


if __name__ == "__main__":
    main()
