#!/usr/bin/env python3
"""One application, three access methods.

The paper's conclusion: the hash package is "one access method which is
part of a generic database access package ... All of the access methods
are based on a key/data pair interface and appear identical to the
application layer, allowing application implementations to be largely
independent of the database type."

This example runs the *same* address-book code against DB_HASH, DB_BTREE
and DB_RECNO, then shows what each method adds: the btree answers ordered
range queries, recno addresses records by line number, hash gives the
fastest point lookups.

Run: ``python examples/access_methods.py``
"""

import os
import tempfile

from repro.access import DB_BTREE, DB_HASH, DB_RECNO, db_open
from repro.access.recno.recno import encode_recno

PEOPLE = [
    ("adams", "room 301"),
    ("baker", "room 117"),
    ("clark", "room 215"),
    ("davis", "room 408"),
    ("evans", "room 122"),
    ("frank", "room 301"),
]


def same_application_code(db, keys):
    """Identical on every access method: store, fetch, scan."""
    for key, (_name, room) in zip(keys, PEOPLE):
        db.put(key, room.encode())
    assert db.get(keys[2]) is not None
    return sum(1 for _ in db.items())


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        byte_keys = [name.encode() for name, _room in PEOPLE]
        recno_keys = [encode_recno(i) for i in range(1, len(PEOPLE) + 1)]

        for type_, keys in (
            (DB_HASH, byte_keys),
            (DB_BTREE, byte_keys),
            (DB_RECNO, recno_keys),
        ):
            with db_open(os.path.join(d, f"book.{type_}"), type_, "n") as db:
                n = same_application_code(db, keys)
                print(f"{type_:>6}: stored and scanned {n} records "
                      f"with identical application code")

        # -- what each method is FOR -----------------------------------------
        print("\nbtree: ordered range query (names c..e) via a cursor")
        with db_open(os.path.join(d, "book.btree"), DB_BTREE, "w") as bt:
            with bt.cursor() as cur:
                rec = cur.seek(b"c")
                while rec is not None and rec[0] < b"f":
                    print(f"   {rec[0].decode():8s} -> {rec[1].decode()}")
                    rec = cur.next()

        print("\nrecno: fetch by record number, insert renumbers")
        with db_open(os.path.join(d, "book.recno"), DB_RECNO, "w") as rn:
            print(f"   record 3 is {rn.get_rec(3).decode()}")
            rn.insert_rec(1, b"front desk")
            print(f"   after insert at 1, record 1 is {rn.get_rec(1).decode()} "
                  f"and record 4 is {rn.get_rec(4).decode()}")

        print("\nhash: unordered but cheapest point lookups")
        with db_open(os.path.join(d, "book.hash"), DB_HASH, "w") as hs:
            print(f"   davis -> {hs.get(b'davis').decode()}")
            print(f"   forward scan only: {[k.decode() for k, _ in hs.items()]}")


if __name__ == "__main__":
    main()
